// Tests for receive cancellation (MPI_Cancel semantics) at the engine,
// endpoint and mini-MPI layers — including the sequence-id interaction
// with the fast path and ordering after a mid-sequence cancel.
#include <gtest/gtest.h>

#include <array>

#include "core/engine.hpp"
#include "mpi/mpi.hpp"

namespace otm {
namespace {

MatchConfig tiny() {
  MatchConfig c;
  c.bins = 8;
  c.block_size = 4;
  c.max_receives = 32;
  c.max_unexpected = 32;
  c.early_booking_check = false;
  return c;
}

TEST(EngineCancel, RemovesPendingReceive) {
  MatchEngine eng(tiny());
  LockstepExecutor ex;
  eng.post_receive({1, 5, 0}, /*buffer_addr=*/7, 0, /*cookie=*/42);
  ASSERT_TRUE(eng.cancel_receive(42).has_value());
  EXPECT_FALSE(eng.cancel_receive(42).has_value())
      << "second cancel finds nothing";
  const auto o = eng.process_one(IncomingMessage::make(1, 5, 0), ex);
  EXPECT_EQ(o.kind, ArrivalOutcome::Kind::kUnexpected)
      << "a cancelled receive must never match";
  EXPECT_EQ(eng.receives().live_descriptors(), 0u) << "slot reclaimed";
}

TEST(EngineCancel, ReturnsBufferAddressOnceThenFails) {
  MatchEngine eng(tiny());
  eng.post_receive({1, 5, 0}, 0xABC, 0, 1);
  const auto first = eng.cancel_receive(1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 0xABCu);
  EXPECT_FALSE(eng.cancel_receive(1).has_value());
}

TEST(EngineCancel, UnknownCookieFails) {
  MatchEngine eng(tiny());
  EXPECT_FALSE(eng.cancel_receive(99).has_value());
}

TEST(EngineCancel, MatchedReceiveCannotBeCancelled) {
  MatchEngine eng(tiny());
  LockstepExecutor ex;
  eng.post_receive({1, 5, 0}, 0, 0, 1);
  eng.process_one(IncomingMessage::make(1, 5, 0), ex);
  EXPECT_FALSE(eng.cancel_receive(1).has_value());
}

TEST(EngineCancel, MidSequenceCancelPreservesOrdering) {
  // R0 R1 R2 same-key; cancel R1; messages must match R0 then R2.
  MatchEngine eng(tiny());
  LockstepExecutor ex;
  eng.post_receive({1, 5, 0}, 0, 0, 100);
  eng.post_receive({1, 5, 0}, 0, 0, 101);
  eng.post_receive({1, 5, 0}, 0, 0, 102);
  ASSERT_TRUE(eng.cancel_receive(101).has_value());
  std::vector<IncomingMessage> msgs(3, IncomingMessage::make(1, 5, 0));
  const auto outs = eng.process(msgs, ex);
  EXPECT_EQ(outs[0].match.receive_cookie, 100u);
  EXPECT_EQ(outs[1].match.receive_cookie, 102u);
  EXPECT_EQ(outs[2].kind, ArrivalOutcome::Kind::kUnexpected);
}

TEST(EngineCancel, PostAfterCancelStartsFreshSequence) {
  MatchEngine eng(tiny());
  eng.post_receive({1, 5, 0}, 0, 0, 1);
  const auto slot_before = eng.receives().desc(0).seq_id;
  (void)slot_before;
  ASSERT_TRUE(eng.cancel_receive(1).has_value());
  const auto a = eng.post_receive({1, 5, 0}, 0, 0, 2);
  const auto b = eng.post_receive({1, 5, 0}, 0, 0, 3);
  ASSERT_EQ(a.kind, PostOutcome::Kind::kPending);
  ASSERT_EQ(b.kind, PostOutcome::Kind::kPending);
  // The two fresh receives still form one compatible sequence together.
  LockstepExecutor ex;
  std::vector<IncomingMessage> msgs(2, IncomingMessage::make(1, 5, 0));
  const auto outs = eng.process(msgs, ex);
  EXPECT_EQ(outs[0].match.receive_cookie, 2u);
  EXPECT_EQ(outs[1].match.receive_cookie, 3u);
}

TEST(MpiCancel, PendingReceiveCancelsAndCompletes) {
  mpi::World world(2, {});
  const mpi::Comm comm = world.proc(0).world_comm();
  std::vector<std::byte> rx(8);
  auto req = world.proc(1).irecv(rx, 0, 5, comm);
  EXPECT_FALSE(world.proc(1).test(req));
  ASSERT_TRUE(world.proc(1).cancel(req));
  EXPECT_TRUE(world.proc(1).test(req)) << "cancelled requests are complete";
  EXPECT_TRUE(world.proc(1).cancelled(req));
  EXPECT_FALSE(world.proc(1).cancel(req)) << "double cancel fails";
}

TEST(MpiCancel, SendRequestsCannotBeCancelled) {
  mpi::World world(2, {});
  const mpi::Comm comm = world.proc(0).world_comm();
  std::vector<std::byte> rx(8);
  world.proc(1).irecv(rx, 0, 1, comm);
  auto sreq = world.proc(0).isend(std::vector<std::byte>(8), 1, 1, comm);
  EXPECT_FALSE(world.proc(0).cancel(sreq));
}

TEST(MpiCancel, CancelledReceiveNeverMatches) {
  mpi::World world(2, {});
  const mpi::Comm comm = world.proc(0).world_comm();
  std::vector<std::byte> rx1(8);
  std::vector<std::byte> rx2(8);
  auto r1 = world.proc(1).irecv(rx1, 0, 4, comm);
  auto r2 = world.proc(1).irecv(rx2, 0, 4, comm);
  ASSERT_TRUE(world.proc(1).cancel(r1));
  world.proc(0).send(std::vector<std::byte>(8, std::byte{0xEE}), 1, 4, comm);
  world.proc(1).wait(r2);
  EXPECT_EQ(rx2[0], std::byte{0xEE}) << "message skips the cancelled receive";
  EXPECT_FALSE(world.proc(1).cancelled(r2));
}

TEST(MpiCancel, DeferredPostCancelsHostSide) {
  mpi::WorldOptions opts;
  opts.match.max_receives = 2;
  mpi::World world(2, opts);
  const mpi::Comm comm = world.proc(0).world_comm();
  std::vector<std::byte> b0(8), b1(8), b2(8);
  world.proc(1).irecv(b0, 0, 0, comm);
  world.proc(1).irecv(b1, 0, 1, comm);
  auto deferred = world.proc(1).irecv(b2, 0, 2, comm);  // queued host-side
  ASSERT_EQ(world.proc(1).pending_posts(), 1u);
  ASSERT_TRUE(world.proc(1).cancel(deferred));
  EXPECT_EQ(world.proc(1).pending_posts(), 0u);
}

TEST(MpiCancel, HostPathCommCancel) {
  mpi::World world(2, {});
  mpi::CommInfo no_offload;
  no_offload.offload = false;
  const mpi::Comm comm = world.proc(0).comm_create(no_offload);
  std::vector<std::byte> rx(8);
  auto req = world.proc(1).irecv(rx, 0, 1, comm);
  ASSERT_TRUE(world.proc(1).cancel(req));
  EXPECT_TRUE(world.proc(1).cancelled(req));
}

// --- Peer death at the request layer (docs/RELIABILITY.md §5) ----------------

/// Black-hole fabric with a tight retry/attempt budget: the first send
/// escalates through recovery to a Dead peer in a few hundred ticks.
mpi::WorldOptions black_hole_world() {
  mpi::WorldOptions opt;
  opt.fabric.fault.enabled = true;
  opt.fabric.fault.drop_probability = 1.0;
  opt.endpoint.reliability.rto_ns = 500;
  opt.endpoint.reliability.rto_max_ns = 4'000;
  opt.endpoint.reliability.progress_tick_ns = 100;
  opt.endpoint.reliability.retry_budget = 2;
  opt.endpoint.recovery.enabled = true;
  opt.endpoint.recovery.max_attempts = 2;
  opt.endpoint.recovery.quiesce_ns = 200;
  return opt;
}

TEST(MpiPeerDeath, SendsFailFastWithTypedErrorAndFreeStaging) {
  mpi::World world(2, black_hole_world());
  const mpi::Comm comm = world.proc(0).world_comm();
  auto& p0 = world.proc(0);

  // A rendezvous-sized send into the black hole: queued at first, then the
  // recovery attempts burn out and the peer is declared Dead.
  const auto req = p0.isend(std::vector<std::byte>(2048), 1, 0, comm);
  EXPECT_FALSE(p0.failed(req)) << "queued reliably at first";
  for (int i = 0; i < 2000 && !p0.peer_dead(1); ++i) p0.progress();
  ASSERT_TRUE(p0.peer_dead(1));

  const auto errs = p0.take_delivery_errors();
  ASSERT_FALSE(errs.empty());
  for (const auto& e : errs) {
    EXPECT_EQ(e.peer, 1);
    EXPECT_EQ(e.outcome, proto::Outcome::kPeerDead);
  }
  EXPECT_EQ(world.endpoint(0).pending_rendezvous(), 0u)
      << "peer death leaked the staged rendezvous payload";

  // New sends to the dead peer fail fast with the typed request error.
  const auto req2 = p0.isend(std::vector<std::byte>(64), 1, 0, comm);
  EXPECT_TRUE(p0.failed(req2));
  EXPECT_EQ(p0.request_error(req2), mpi::Proc::RequestError::kPeerDead);
  EXPECT_EQ(p0.request_error(req), mpi::Proc::RequestError::kNone)
      << "the already-completed send keeps its clean record";
}

TEST(MpiPeerDeath, DrainPeerWithdrawsSourceSpecificReceivesOnly) {
  mpi::World world(2, black_hole_world());
  const mpi::Comm comm = world.proc(0).world_comm();
  auto& p0 = world.proc(0);

  // Kill peer 1 with an undeliverable send.
  p0.isend(std::vector<std::byte>(64), 1, 0, comm);
  for (int i = 0; i < 2000 && !p0.peer_dead(1); ++i) p0.progress();
  ASSERT_TRUE(p0.peer_dead(1));

  // Receives posted before the application learns of the death: one names
  // the dead peer, one is a wildcard that another rank could still satisfy.
  std::vector<std::byte> rx1(64), rx2(64);
  const auto dead_req = p0.irecv(rx1, 1, 3, comm);
  const auto wild_req = p0.irecv(rx2, kAnySource, 3, comm);

  EXPECT_EQ(p0.drain_peer(1), 1u) << "exactly the source-specific receive";
  EXPECT_TRUE(p0.test(dead_req)) << "drained receives are complete";
  EXPECT_TRUE(p0.failed(dead_req));
  EXPECT_EQ(p0.request_error(dead_req), mpi::Proc::RequestError::kPeerDead);
  EXPECT_FALSE(p0.test(wild_req)) << "wildcards survive a peer drain";
  EXPECT_EQ(p0.request_error(wild_req), mpi::Proc::RequestError::kNone);

  EXPECT_EQ(p0.drain_peer(1), 0u) << "drain is idempotent";
  // A drained request cannot be cancelled again — it is already complete.
  EXPECT_FALSE(p0.cancel(dead_req));
}

TEST(MpiPeerDeath, CancelStillWorksOnReceivesNamingADeadPeer) {
  mpi::World world(2, black_hole_world());
  const mpi::Comm comm = world.proc(0).world_comm();
  auto& p0 = world.proc(0);

  p0.isend(std::vector<std::byte>(64), 1, 0, comm);
  for (int i = 0; i < 2000 && !p0.peer_dead(1); ++i) p0.progress();
  ASSERT_TRUE(p0.peer_dead(1));

  std::vector<std::byte> rx(64);
  const auto req = p0.irecv(rx, 1, 7, comm);
  ASSERT_TRUE(p0.cancel(req));
  EXPECT_TRUE(p0.cancelled(req));
  EXPECT_EQ(p0.request_error(req), mpi::Proc::RequestError::kNone)
      << "a user cancel is not a peer-death failure";
}

TEST(MpiPeerDeath, WaitAnyReturnsTypedErrorInsteadOfSpinning) {
  // Regression: wait_any used to busy-spin forever when every pending
  // request was a receive naming a Dead peer. It must now drain them and
  // return a completed-but-failed request with the typed kPeerDead error.
  mpi::World world(3, black_hole_world());
  const mpi::Comm comm = world.proc(0).world_comm();
  auto& p0 = world.proc(0);

  // Burn both peers' retry budgets so the health machine declares them Dead.
  p0.isend(std::vector<std::byte>(64), 1, 0, comm);
  p0.isend(std::vector<std::byte>(64), 2, 0, comm);
  for (int i = 0; i < 8000 && !(p0.peer_dead(1) && p0.peer_dead(2)); ++i)
    p0.progress();
  ASSERT_TRUE(p0.peer_dead(1));
  ASSERT_TRUE(p0.peer_dead(2));

  std::vector<std::byte> rx1(64), rx2(64);
  const std::array<mpi::Request, 2> reqs{p0.irecv(rx1, 1, 7, comm),
                                         p0.irecv(rx2, 2, 7, comm)};
  mpi::Status status{};
  const std::size_t idx = p0.wait_any(reqs, &status);
  ASSERT_LT(idx, reqs.size());
  EXPECT_TRUE(p0.failed(reqs[idx]));
  EXPECT_EQ(p0.request_error(reqs[idx]), mpi::Proc::RequestError::kPeerDead);
  // The drain failed every receive naming a dead peer, not just one.
  for (const auto req : reqs) {
    EXPECT_TRUE(p0.test(req));
    EXPECT_EQ(p0.request_error(req), mpi::Proc::RequestError::kPeerDead);
  }
}

TEST(MpiCancel, SoftwareBackendCancel) {
  mpi::WorldOptions opts;
  opts.backend = mpi::Backend::kSoftwareList;
  mpi::World world(2, opts);
  const mpi::Comm comm = world.proc(0).world_comm();
  std::vector<std::byte> rx(8);
  auto req = world.proc(1).irecv(rx, 0, 1, comm);
  ASSERT_TRUE(world.proc(1).cancel(req));
  EXPECT_TRUE(world.proc(1).cancelled(req));
}

}  // namespace
}  // namespace otm
