// otmlint-fixture: src/proto/fixture.cpp
// R7 bad twin: runtime errors that kill the process instead of surfacing a
// typed outcome the caller can handle.
#include <cassert>
#include <cstdlib>

namespace otm::proto {

int deliver(int status) {
  if (status == -1) std::abort();  // crash on a runtime error
  if (status == -2) exit(1);       // so does this
  assert(status >= 0);             // bare C assert in an error path
  return status;
}

}  // namespace otm::proto
