# Empty compiler generated dependencies file for otm_core.
# This may be replaced when dependencies are built.
