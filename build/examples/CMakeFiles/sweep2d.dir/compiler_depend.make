# Empty compiler generated dependencies file for sweep2d.
# This may be replaced when dependencies are built.
