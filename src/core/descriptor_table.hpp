// Fixed-size descriptor table with a free list (Sec. III-B: "receive
// descriptors are stored in a fixed-size table, where the size of the table
// determines the maximum number of receives that can be posted at the same
// time"). Allocation failure is the engine's signal to fall back to software
// tag matching.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/descriptor.hpp"
#include "util/assert.hpp"
#include "util/spinlock.hpp"
#include "util/thread_annotations.hpp"

namespace otm {

template <typename Descriptor>
class DescriptorTable {
 public:
  explicit DescriptorTable(std::size_t capacity)
      : slots_(std::make_unique<Descriptor[]>(capacity)), capacity_(capacity) {
    free_.reserve(capacity);
    // Hand out low slot ids first: keeps tests readable and cache use dense.
    for (std::size_t i = capacity; i > 0; --i)
      free_.push_back(static_cast<std::uint32_t>(i - 1));
  }

  /// Allocate a slot; returns kInvalidSlot when the table is exhausted.
  std::uint32_t allocate() noexcept {
    SpinGuard g(lock_);
    if (free_.empty()) return kInvalidSlot;
    const std::uint32_t id = free_.back();
    free_.pop_back();
    ++live_;
    return id;
  }

  /// Return a slot to the free list. The descriptor is reset.
  void release(std::uint32_t id) noexcept {
    OTM_ASSERT(id < capacity_);
    slots_[id].reset();
    SpinGuard g(lock_);
    free_.push_back(id);
    OTM_ASSERT(live_ > 0);
    --live_;
  }

  Descriptor& operator[](std::uint32_t id) noexcept {
    OTM_ASSERT(id < capacity_);
    return slots_[id];
  }

  const Descriptor& operator[](std::uint32_t id) const noexcept {
    OTM_ASSERT(id < capacity_);
    return slots_[id];
  }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t live() const noexcept {
    SpinGuard g(lock_);
    return live_;
  }
  bool full() const noexcept {
    SpinGuard g(lock_);
    return free_.empty();
  }

 private:
  std::unique_ptr<Descriptor[]> slots_;
  std::size_t capacity_;
  mutable Spinlock lock_;
  std::vector<std::uint32_t> free_ OTM_GUARDED_BY(lock_);
  std::size_t live_ OTM_GUARDED_BY(lock_) = 0;
};

}  // namespace otm
