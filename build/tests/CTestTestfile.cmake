# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/core_store_test[1]_include.cmake")
include("/root/repo/build/tests/core_unexpected_test[1]_include.cmake")
include("/root/repo/build/tests/core_block_test[1]_include.cmake")
include("/root/repo/build/tests/core_engine_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/oracle_property_test[1]_include.cmake")
include("/root/repo/build/tests/dpa_test[1]_include.cmake")
include("/root/repo/build/tests/rdma_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/synthetic_test[1]_include.cmake")
include("/root/repo/build/tests/hints_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/multicomm_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/probe_test[1]_include.cmake")
include("/root/repo/build/tests/dumpi_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/jsonl_test[1]_include.cmake")
include("/root/repo/build/tests/patterns_test[1]_include.cmake")
include("/root/repo/build/tests/app_characterization_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/cancel_test[1]_include.cmake")
include("/root/repo/build/tests/obs_test[1]_include.cmake")
