
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/trace_test.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/otm_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/otm_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/baseline/CMakeFiles/otm_baseline.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/dpa/CMakeFiles/otm_dpa.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/proto/CMakeFiles/otm_proto.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/mpi/CMakeFiles/otm_mpi.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/trace/CMakeFiles/otm_trace.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/obs/CMakeFiles/otm_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
