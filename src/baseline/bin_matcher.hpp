// Flajslik-style bin-based matching (Table I; Flajslik et al., "Mitigating
// MPI message matching misery").
//
// Posted receives without wildcards are hashed into bins keyed by
// (src, tag); receives with any wildcard live in a separate posting-ordered
// list. Global posting timestamps arbitrate between a bin hit and a
// wildcard hit (constraint C1). Unexpected messages are hashed the same way
// and additionally threaded onto one arrival-ordered list so that wildcard
// receives can scan them in order (constraint C2).
//
// With b bins the expected search cost drops from O(n) to O(n/b); receives
// that collide into one bin degrade back to O(n) — the behavior Fig. 7
// quantifies.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <vector>

#include "baseline/reference_matcher.hpp"
#include "util/hash.hpp"

namespace otm {

class BinMatcher final : public ReferenceMatcher {
 public:
  explicit BinMatcher(std::size_t bins);

  std::optional<std::uint64_t> post(const MatchSpec& spec,
                                    std::uint64_t receive_id) override;
  std::optional<std::uint64_t> arrive(const Envelope& env,
                                      std::uint64_t message_id) override;

  std::size_t posted_size() const override;
  std::size_t unexpected_size() const override { return um_order_.size(); }

  std::size_t bins() const noexcept { return prq_bins_.size(); }

  /// Longest posted-receive bin chain (queue-depth metric).
  std::size_t max_bin_depth() const;

 private:
  struct PostedReceive {
    MatchSpec spec;
    std::uint64_t id;
    std::uint64_t timestamp;
  };
  struct UnexpectedMessage {
    Envelope env;
    std::uint64_t id;
    std::uint64_t timestamp;
  };

  std::size_t bin_of(Rank src, Tag tag) const noexcept {
    return hash_src_tag(src, tag) & mask_;
  }

  using UmList = std::list<UnexpectedMessage>;

  std::vector<std::list<PostedReceive>> prq_bins_;
  std::list<PostedReceive> prq_wild_;  ///< receives using any wildcard
  UmList um_order_;  ///< all unexpected, arrival order (authoritative)
  std::vector<std::list<UmList::iterator>> umq_bins_;
  std::size_t mask_;
  std::uint64_t next_ts_ = 0;
};

}  // namespace otm
