// Per-bin spinlock (Sec. IV-E: each bin entry carries a 4-byte remove lock).
//
// Matching threads on an on-NIC accelerator are run-to-completion tasks with
// no blocking primitives, so contention is resolved by spinning. The lock is
// only taken on structural mutation (insert, unlink); searches are lock-free
// when lazy removal is enabled.
//
// The class is a clang thread-safety *capability*: fields annotated
// OTM_GUARDED_BY(lock) and helpers annotated OTM_REQUIRES(lock) are checked
// at compile time under OTM_LINT (-Wthread-safety).
#pragma once

#include <atomic>

#include "util/thread_annotations.hpp"

namespace otm {

class OTM_CAPABILITY("spinlock") Spinlock {
 public:
  Spinlock() noexcept = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() noexcept OTM_ACQUIRE() {
    // acquire: the critical section must observe all writes published by
    // the previous holder's release store in unlock().
    while (flag_.exchange(true, std::memory_order_acquire)) {
      // relaxed: the inner test-loop only waits for the flag to drop; the
      // synchronizing read is the acquire exchange above that ends the wait.
      while (flag_.load(std::memory_order_relaxed)) {
        // spin
      }
    }
  }

  bool try_lock() noexcept OTM_TRY_ACQUIRE(true) {
    // acquire: same ordering contract as lock() when the exchange wins.
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept OTM_RELEASE() {
    // release: publishes the critical section to the next acquirer.
    flag_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard; std::lock_guard works too, this one adds try semantics and
/// is visible to the thread-safety analysis (scoped capability).
class OTM_SCOPED_CAPABILITY SpinGuard {
 public:
  explicit SpinGuard(Spinlock& l) noexcept OTM_ACQUIRE(l) : lock_(l) {
    lock_.lock();
  }
  ~SpinGuard() OTM_RELEASE() { lock_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  Spinlock& lock_;
};

}  // namespace otm
