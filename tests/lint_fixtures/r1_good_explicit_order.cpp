// otmlint-fixture: src/core/fixture.cpp
// R1 good twin: explicit order with an adjacent justification comment.
#include <atomic>

namespace otm {

std::atomic<unsigned> counter{0};

unsigned bump() {
  // relaxed: standalone statistic, no ordering with other state.
  return counter.fetch_add(1, std::memory_order_relaxed);
}

unsigned observe() {
  // acquire: pairs with the release increment published by the producer.
  return counter.load(std::memory_order_acquire);
}

}  // namespace otm
