# Empty compiler generated dependencies file for core_store_test.
# This may be replaced when dependencies are built.
