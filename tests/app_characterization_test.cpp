// Per-application characterization: each synthetic generator must exhibit
// the matching profile its mini-app shows in the paper's Figs. 6-7 —
// call mix, wildcard usage, 1-bin queue-depth band, and unexpected-message
// tendency (wavefront sweeps produce many, receive-first halos almost none).
#include <gtest/gtest.h>

#include <string>

#include "trace/analyzer.hpp"
#include "trace/synthetic.hpp"

namespace otm::trace {
namespace {

enum class Mix { kPureP2p, kP2pDominant, kCollectiveOnly };

struct AppProfile {
  const char* name;
  Mix mix;
  bool uses_wildcards;
  double min_depth1;  ///< avg queue depth band at 1 bin (loose)
  double max_depth1;
  bool sweep_like;  ///< wavefront: significant unexpected traffic
};

const AppProfile kProfiles[] = {
    // name               mix                   wild   depth1 band   sweep
    {"AMG", Mix::kP2pDominant, false, 0.5, 4.0, false},
    {"AMR-MiniApp", Mix::kP2pDominant, true, 0.5, 4.0, false},
    {"BigFFT", Mix::kPureP2p, false, 4.0, 20.0, false},
    {"BoxLib-CNS", Mix::kP2pDominant, false, 3.0, 15.0, false},
    {"BoxLib-MultiGrid", Mix::kP2pDominant, false, 0.5, 4.0, false},
    {"CrystalRouter", Mix::kPureP2p, true, 2.0, 10.0, false},
    {"FillBoundary", Mix::kPureP2p, false, 3.0, 15.0, false},
    {"HILO", Mix::kCollectiveOnly, false, 0.0, 0.0, false},
    {"HILO-2D", Mix::kCollectiveOnly, false, 0.0, 0.0, false},
    {"LULESH", Mix::kP2pDominant, false, 3.0, 15.0, false},
    {"MiniFE", Mix::kP2pDominant, false, 0.5, 4.0, false},
    {"MOCFE", Mix::kP2pDominant, false, 0.1, 2.0, true},
    {"MultiGrid", Mix::kP2pDominant, false, 0.5, 4.0, false},
    {"Nekbone", Mix::kP2pDominant, false, 0.5, 4.0, false},
    {"PARTISN", Mix::kP2pDominant, false, 0.1, 2.0, true},
    {"SNAP", Mix::kP2pDominant, false, 0.1, 2.0, true},
};

class AppCharacterization : public ::testing::TestWithParam<AppProfile> {};

TEST_P(AppCharacterization, MatchesPaperProfile) {
  const AppProfile& p = GetParam();
  const AppInfo* app = find_app(p.name);
  ASSERT_NE(app, nullptr);
  const Trace trace = app->make();

  AnalyzerConfig cfg;
  cfg.bins = 1;  // traditional matching: Fig. 7's leftmost column
  const AppAnalysis a = TraceAnalyzer(cfg).analyze(trace);

  switch (p.mix) {
    case Mix::kPureP2p:
      EXPECT_EQ(a.calls.collective, 0u);
      EXPECT_GT(a.calls.p2p, 0u);
      break;
    case Mix::kP2pDominant:
      EXPECT_GT(a.calls.pct_p2p(), 50.0);
      EXPECT_GT(a.calls.collective, 0u);
      break;
    case Mix::kCollectiveOnly:
      EXPECT_EQ(a.calls.p2p, 0u);
      EXPECT_GT(a.calls.collective, 0u);
      break;
  }
  EXPECT_EQ(a.calls.one_sided, 0u);

  if (p.uses_wildcards) {
    EXPECT_GT(a.wildcard_receives, 0u);
  } else {
    EXPECT_EQ(a.wildcard_receives, 0u);
  }

  EXPECT_GE(a.avg_queue_depth, p.min_depth1)
      << p.name << " depth " << a.avg_queue_depth;
  EXPECT_LE(a.avg_queue_depth, p.max_depth1)
      << p.name << " depth " << a.avg_queue_depth;

  if (p.mix != Mix::kCollectiveOnly) {
    const double unexpected_ratio =
        static_cast<double>(a.unexpected) /
        static_cast<double>(a.messages == 0 ? 1 : a.messages);
    if (p.sweep_like) {
      // In the timestamp-ordered replay most sweep receives still precede
      // their sends, but some racing remains (unlike receive-first halos,
      // which are unexpected-free by construction).
      EXPECT_GT(unexpected_ratio, 0.005)
          << p.name << ": wavefront sweeps race sends ahead of receives";
    } else {
      EXPECT_LT(unexpected_ratio, 0.35)
          << p.name << ": receive-first patterns rarely go unexpected";
    }
    EXPECT_EQ(a.dropped, 0u) << "analyzer tables must never overflow";
  }
}

TEST_P(AppCharacterization, BinsCollapseDepth) {
  const AppProfile& p = GetParam();
  if (p.mix == Mix::kCollectiveOnly) GTEST_SKIP() << "no matching traffic";
  const AppInfo* app = find_app(p.name);
  const Trace trace = app->make();
  AnalyzerConfig c1;
  c1.bins = 1;
  AnalyzerConfig c128;
  c128.bins = 128;
  const auto d1 = TraceAnalyzer(c1).analyze(trace).avg_queue_depth;
  const auto d128 = TraceAnalyzer(c128).analyze(trace).avg_queue_depth;
  EXPECT_LT(d128, 0.35 * d1 + 0.05)
      << p.name << ": 128 bins must collapse the queue depth";
}

INSTANTIATE_TEST_SUITE_P(Suite, AppCharacterization,
                         ::testing::ValuesIn(kProfiles),
                         [](const auto& param_info) {
                           std::string n = param_info.param.name;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

}  // namespace
}  // namespace otm::trace
