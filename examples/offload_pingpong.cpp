// Offloaded endpoint in the raw (below the MPI layer): drives the
// Sec. IV architecture directly — bounce buffers, completion queue, DPA
// matching, eager vs rendezvous protocol — and prints the modeled
// timeline, including the conflict-resolution paths under a same-tag
// burst (the paper's WC scenario).
//
//   $ ./offload_pingpong [--msgs=32] [--eager-threshold=1024]
#include <cstdio>
#include <vector>

#include "proto/endpoint.hpp"
#include "util/args.hpp"

using namespace otm;
using namespace otm::proto;

namespace {

const char* path_name(ResolutionPath p) {
  switch (p) {
    case ResolutionPath::kOptimistic: return "optimistic";
    case ResolutionPath::kFastPath: return "fast-path";
    case ResolutionPath::kSlowPath: return "slow-path";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const unsigned msgs = static_cast<unsigned>(args.get_int("msgs", 32));

  rdma::Fabric fabric;
  EndpointConfig ep_cfg;
  ep_cfg.eager_threshold =
      static_cast<std::size_t>(args.get_int("eager-threshold", 1024));
  MatchConfig match = MatchConfig::paper_prototype();
  match.early_booking_check = false;  // let the burst conflict
  DpaConfig dpa;

  Endpoint sender(fabric, 0, ep_cfg, match, dpa);
  Endpoint receiver(fabric, 1, ep_cfg, match, dpa);
  sender.connect(receiver);

  // --- 1) Same-tag burst: the with-conflict scenario ----------------------
  std::printf("1) burst of %u same-tag messages into a compatible receive "
              "sequence:\n", msgs);
  std::vector<std::vector<std::byte>> bufs(msgs, std::vector<std::byte>(64));
  for (unsigned i = 0; i < msgs; ++i)
    receiver.post_receive({0, /*tag=*/7, 0}, bufs[i], /*cookie=*/i);
  std::vector<std::byte> payload(64, std::byte{0x5A});
  for (unsigned i = 0; i < msgs; ++i) sender.send(1, 7, 0, payload);

  unsigned by_path[3] = {0, 0, 0};
  for (const auto& c : receiver.progress())
    ++by_path[static_cast<unsigned>(c.path)];
  std::printf("   matched %u messages:", msgs);
  for (unsigned p = 0; p < 3; ++p)
    std::printf(" %u %s", by_path[p], path_name(static_cast<ResolutionPath>(p)));
  std::printf("\n");
  const MatchStats& s = receiver.dpa().engine().stats();
  std::printf("   conflicts detected on the DPA: %llu (host CPU matching "
              "cycles: %llu)\n\n",
              static_cast<unsigned long long>(s.conflicts_detected),
              static_cast<unsigned long long>(
                  receiver.dpa().host_matching_cycles()));

  // --- 2) Eager vs rendezvous ---------------------------------------------
  std::printf("2) protocol selection by size (threshold %zu B):\n",
              ep_cfg.eager_threshold);
  std::vector<std::byte> small_rx(128);
  std::vector<std::byte> big_rx(64 * 1024);
  receiver.post_receive({0, 20, 0}, small_rx, 100);
  receiver.post_receive({0, 21, 0}, big_rx, 101);
  std::vector<std::byte> small_tx(128, std::byte{1});
  std::vector<std::byte> big_tx(64 * 1024, std::byte{2});
  sender.send(1, 20, 0, small_tx);
  sender.send(1, 21, 0, big_tx);
  for (const auto& c : receiver.progress())
    std::printf("   cookie %llu: %u bytes at t=%.2f us (%s)\n",
                static_cast<unsigned long long>(c.cookie), c.bytes,
                static_cast<double>(c.completion_ns) / 1000.0,
                c.cookie == 100 ? "eager: staged in NIC bounce buffer"
                                : "rendezvous: RDMA read from sender");
  std::printf("   eager sends: %llu, rendezvous sends: %llu, RDMA reads: %llu\n\n",
              static_cast<unsigned long long>(sender.counters().eager_sends),
              static_cast<unsigned long long>(sender.counters().rendezvous_sends),
              static_cast<unsigned long long>(receiver.counters().rdma_reads));

  // --- 3) Unexpected rendezvous: late receive triggers the read -----------
  std::printf("3) unexpected rendezvous message, matched at post time:\n");
  std::vector<std::byte> late_tx(32 * 1024, std::byte{3});
  sender.send(1, 30, 0, late_tx);
  receiver.progress();  // RTS lands unexpected; no payload staged
  std::vector<std::byte> late_rx(32 * 1024);
  const auto post = receiver.post_receive({0, 30, 0}, late_rx, 200);
  std::printf("   post matched the stored RTS and read %u bytes "
              "(data intact: %s)\n",
              post.completion.bytes, late_rx == late_tx ? "yes" : "NO");
  return late_rx == late_tx ? 0 : 1;
}
