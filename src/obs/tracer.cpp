#include "obs/tracer.hpp"

#include <algorithm>
#include <ostream>

namespace otm::obs {

const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kBlockBegin: return "block";
    case EventKind::kBlockEnd: return "block";
    case EventKind::kCandidate: return "candidate";
    case EventKind::kBooking: return "booking";
    case EventKind::kConflict: return "conflict";
    case EventKind::kResolution: return "resolution";
    case EventKind::kUmqInsert: return "umq_insert";
    case EventKind::kPostReceive: return "post_receive";
    case EventKind::kUmqMatch: return "umq_match";
    case EventKind::kDescriptorFallback: return "descriptor_fallback";
    case EventKind::kProbe: return "probe";
    case EventKind::kCancel: return "cancel";
    case EventKind::kSend: return "send";
    case EventKind::kProgress: return "progress";
    case EventKind::kSample: return "sample";
  }
  return "?";
}

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 16;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

Tracer::Tracer(std::size_t capacity) : slots_(round_up_pow2(capacity)) {
  mask_ = slots_.size() - 1;
}

void Tracer::record(EventKind kind, std::uint64_t ts, std::uint32_t lane,
                    std::uint64_t a0, std::uint64_t a1) noexcept {
  // relaxed: the claim only needs a unique seq; publication order is
  // carried entirely by the stamp protocol below.
  const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[static_cast<std::size_t>(seq) & mask_];
  // Invalidate the slot first so a racing snapshot never sees the new stamp
  // paired with the old payload. Both stores release: they pair with
  // snapshot()'s acquire load, ordering the payload write between them.
  s.stamp.store(~std::uint64_t{0}, std::memory_order_release);
  s.ev = TraceEvent{ts, a0, a1, seq, lane, kind};
  s.stamp.store(seq, std::memory_order_release);
}

std::vector<TraceEvent> Tracer::snapshot() const {
  const std::uint64_t n = emitted();
  const std::uint64_t first = n > capacity() ? n - capacity() : 0;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(n - first));
  for (std::uint64_t seq = first; seq < n; ++seq) {
    const Slot& s = slots_[static_cast<std::size_t>(seq) & mask_];
    // acquire: pairs with record()'s release stamp — a matching stamp
    // implies the slot's payload write is visible.
    if (s.stamp.load(std::memory_order_acquire) != seq) continue;  // in flight
    out.push_back(s.ev);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.seq < b.seq; });
  return out;
}

void Tracer::clear() noexcept {
  // relaxed: clear() is documented single-threaded (no concurrent record);
  // there is no payload to order against the invalidation stamps.
  for (Slot& s : slots_) s.stamp.store(~std::uint64_t{0}, std::memory_order_relaxed);
  next_.store(0, std::memory_order_relaxed);
}

void write_chrome_event(std::ostream& os, const TraceEvent& e, bool& first) {
  const char* ph = "i";
  switch (e.kind) {
    case EventKind::kBlockBegin: ph = "B"; break;
    case EventKind::kBlockEnd: ph = "E"; break;
    case EventKind::kSample: ph = "C"; break;
    default: break;
  }
  if (!first) os << ",\n";
  first = false;
  os << "  {\"name\":\"" << to_string(e.kind) << "\",\"ph\":\"" << ph
     << "\",\"ts\":" << e.ts << ",\"pid\":0,\"tid\":" << e.lane;
  if (e.kind == EventKind::kSample) {
    os << ",\"args\":{\"value\":" << e.a0 << "}";
  } else if (ph[0] == 'i') {
    os << ",\"s\":\"t\",\"args\":{\"a0\":" << e.a0 << ",\"a1\":" << e.a1
       << ",\"seq\":" << e.seq << "}";
  } else {
    os << ",\"args\":{\"a0\":" << e.a0 << ",\"a1\":" << e.a1 << "}";
  }
  os << "}";
}

void Tracer::write_chrome_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  for (const TraceEvent& e : snapshot()) write_chrome_event(os, e, first);
  os << "\n]}\n";
}

}  // namespace otm::obs
