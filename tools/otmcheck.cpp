// otmcheck: systematic schedule/fault model checker for the offloaded
// matching protocol stack (docs/VERIFICATION.md).
//
// Explores every scheduler interleaving and early-packet fault decision of
// small scenario worlds (src/verify/scenarios.cpp) within pruning budgets,
// checking the machine-checkable invariant oracles on every branch. A
// violation is serialized as a .otmsched counterexample that replays
// deterministically (--replay, or OTM_SCHED_TRACE for the schedule half).
//
//   otmcheck --list
//   otmcheck --scenario=all --budget=4096
//   otmcheck --scenario=recovery_flap --max-faults=4 --emit=out/
//   otmcheck --replay=out/recovery_flap-ack_fence.otmsched
//   otmcheck --planted-check          # prove the checker finds real bugs
//
// Exit codes: 0 all green, 1 violations found (or planted-bug check
// failed), 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "verify/explorer.hpp"
#include "verify/scenarios.hpp"

namespace {

using otm::verify::Counterexample;
using otm::verify::ExploreOptions;
using otm::verify::Explorer;
using otm::verify::ExploreResult;
using otm::verify::RunResult;
using otm::verify::Scenario;

struct Cli {
  std::string scenario = "all";
  std::string emit_dir;
  std::string replay_file;
  ExploreOptions opts;
  bool list = false;
  bool planted_check = false;
  bool keep_going = false;  ///< report every counterexample, not the first
};

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: otmcheck [--scenario=<name|all>] [--budget=N]\n"
               "                [--max-preemptions=N] [--max-faults=N]\n"
               "                [--emit=DIR] [--keep-going]\n"
               "       otmcheck --replay=FILE.otmsched\n"
               "       otmcheck --planted-check [--emit=DIR] [--budget=N]\n"
               "       otmcheck --list\n");
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

std::optional<Cli> parse_cli(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg]() { return arg.substr(arg.find('=') + 1); };
    std::uint64_t n = 0;
    if (arg == "--list") {
      cli.list = true;
    } else if (arg == "--planted-check") {
      cli.planted_check = true;
    } else if (arg == "--keep-going") {
      cli.keep_going = true;
    } else if (arg.rfind("--scenario=", 0) == 0) {
      cli.scenario = value();
    } else if (arg.rfind("--emit=", 0) == 0) {
      cli.emit_dir = value();
    } else if (arg.rfind("--replay=", 0) == 0) {
      cli.replay_file = value();
    } else if (arg.rfind("--budget=", 0) == 0 && parse_u64(value().c_str(), n)) {
      cli.opts.max_runs = n;
    } else if (arg.rfind("--max-preemptions=", 0) == 0 &&
               parse_u64(value().c_str(), n)) {
      cli.opts.max_preemptions = static_cast<std::uint32_t>(n);
    } else if (arg.rfind("--max-faults=", 0) == 0 &&
               parse_u64(value().c_str(), n)) {
      cli.opts.max_faults = static_cast<std::uint32_t>(n);
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "otmcheck: unknown or malformed option '%s'\n",
                   arg.c_str());
      return std::nullopt;
    }
  }
  return cli;
}

std::string emit_path(const std::string& dir, const Counterexample& cx) {
  std::string name = cx.scenario + "-" + cx.violation.invariant + ".otmsched";
  if (dir.empty()) return name;
  return dir.back() == '/' ? dir + name : dir + "/" + name;
}

bool write_counterexample(const std::string& dir, const Counterexample& cx,
                          std::string& path_out) {
  path_out = emit_path(dir, cx);
  std::ofstream out(path_out);
  if (!out) {
    std::fprintf(stderr, "otmcheck: cannot write %s\n", path_out.c_str());
    return false;
  }
  out << cx.to_json();
  return true;
}

void print_stats(const ExploreResult& r) {
  std::printf(
      "  runs %llu, decision points %llu, frontier peak %llu\n"
      "  pruned: %llu preemption-bound, %llu fault-budget, %llu subsumed%s\n",
      static_cast<unsigned long long>(r.stats.runs),
      static_cast<unsigned long long>(r.stats.decision_points),
      static_cast<unsigned long long>(r.stats.frontier_peak),
      static_cast<unsigned long long>(r.stats.pruned_preemption),
      static_cast<unsigned long long>(r.stats.pruned_fault),
      static_cast<unsigned long long>(r.stats.subsumed),
      r.stats.budget_exhausted ? " (run budget exhausted)" : "");
}

/// Explore one scenario; returns true when every branch stayed green.
bool check_scenario(const Scenario& s, const Cli& cli) {
  ExploreOptions opts = cli.opts;
  opts.stop_at_first_violation = !cli.keep_going;
  Explorer explorer(s, opts);
  std::printf("[%s] %s\n", s.name.c_str(), s.description.c_str());
  const ExploreResult result = explorer.explore();
  print_stats(result);
  if (result.ok()) {
    std::printf("  PASS: all invariants hold on every explored branch\n");
    return true;
  }
  for (const Counterexample& cx : result.counterexamples) {
    std::printf("  FAIL %s: %s\n", cx.violation.invariant.c_str(),
                cx.violation.detail.c_str());
    std::string path;
    if (write_counterexample(cli.emit_dir, cx, path))
      std::printf("  counterexample: %s (%zu decisions)\n", path.c_str(),
                  cx.decisions.size());
  }
  return false;
}

int run_replay(const Cli& cli) {
  std::ifstream in(cli.replay_file);
  if (!in) {
    std::fprintf(stderr, "otmcheck: cannot read %s\n",
                 cli.replay_file.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const auto cx = Counterexample::from_json(text.str());
  if (!cx) {
    std::fprintf(stderr, "otmcheck: %s is not a .otmsched counterexample\n",
                 cli.replay_file.c_str());
    return 2;
  }
  const Scenario* s = otm::verify::find_scenario(cx->scenario);
  if (s == nullptr) {
    std::fprintf(stderr, "otmcheck: unknown scenario '%s' in %s\n",
                 cx->scenario.c_str(), cli.replay_file.c_str());
    return 2;
  }
  Explorer explorer(*s, cli.opts);
  const RunResult r = explorer.replay(cx->choices());
  std::printf("[%s] replayed %zu decisions: %s\n", s->name.c_str(),
              r.decisions.size(), r.completed ? "completed" : "deadlocked");
  for (const auto& v : r.violations)
    std::printf("  violation %s: %s\n", v.invariant.c_str(),
                v.detail.c_str());
  if (r.violations.empty()) {
    std::printf("  no violations reproduced\n");
    return 0;
  }
  return 1;
}

/// One planted-bug target: break `break_name` via OTM_VERIFY_BREAK while
/// exploring `scenario`; the explorer must find an `expect_invariant`
/// violation and the emitted counterexample must reproduce the identical
/// violation on three consecutive replays (plus a serialized round-trip).
int run_one_planted(const char* scenario, const char* break_name,
                    const char* expect_invariant, const Cli& cli,
                    std::uint32_t min_preemptions) {
  const Scenario* s = otm::verify::find_scenario(scenario);
  if (s == nullptr) {
    std::fprintf(stderr, "otmcheck: %s scenario missing\n", scenario);
    return 1;
  }
  ::setenv("OTM_VERIFY_BREAK", break_name, 1);
  ExploreOptions opts = cli.opts;
  opts.stop_at_first_violation = true;
  if (opts.max_runs == ExploreOptions{}.max_runs) opts.max_runs = 30'000;
  opts.max_faults = std::max<std::uint32_t>(opts.max_faults, 4);
  opts.max_preemptions =
      std::max<std::uint32_t>(opts.max_preemptions, min_preemptions);
  Explorer explorer(*s, opts);
  std::printf("[planted] exploring %s with the %s disabled "
              "(OTM_VERIFY_BREAK=%s)\n",
              scenario, expect_invariant, break_name);
  const ExploreResult result = explorer.explore();
  print_stats(result);
  int rc = 1;
  if (result.counterexamples.empty()) {
    std::printf("  FAIL: planted %s bug was not found\n", expect_invariant);
  } else {
    const Counterexample& cx = result.counterexamples.front();
    std::printf("  found %s after %llu runs: %s\n",
                cx.violation.invariant.c_str(),
                static_cast<unsigned long long>(result.stats.runs),
                cx.violation.detail.c_str());
    std::string path;
    const bool emitted = write_counterexample(cli.emit_dir, cx, path);
    if (emitted)
      std::printf("  counterexample: %s\n", path.c_str());
    bool deterministic = cx.violation.invariant == expect_invariant;
    if (!deterministic)
      std::printf("  FAIL: expected an %s violation, got %s\n",
                  expect_invariant, cx.violation.invariant.c_str());
    for (int i = 0; deterministic && i < 3; ++i) {
      const RunResult r = explorer.replay(cx.choices());
      if (r.violations.empty() ||
          r.violations.front().invariant != cx.violation.invariant ||
          r.violations.front().detail != cx.violation.detail) {
        std::printf("  FAIL: replay %d did not reproduce the violation\n",
                    i + 1);
        deterministic = false;
      }
    }
    if (deterministic && emitted) {
      // Round-trip the serialized form too: the artifact a nightly job
      // uploads must itself replay, not just the in-memory decisions.
      std::ifstream in(path);
      std::ostringstream text;
      text << in.rdbuf();
      const auto reread = Counterexample::from_json(text.str());
      if (!reread ||
          Explorer(*s, opts).replay(reread->choices()).violations.empty()) {
        std::printf("  FAIL: serialized counterexample did not replay\n");
        deterministic = false;
      }
    }
    if (deterministic) {
      std::printf("  PASS: violation found and replayed deterministically "
                  "3/3 times\n");
      rc = 0;
    }
  }
  ::unsetenv("OTM_VERIFY_BREAK");
  return rc;
}

/// Planted-bug self-test: prove the checker finds real bugs, one target
/// per fence.
///
/// ack_fence / recovery_flap: a sender's recovery bumps its channel epoch
/// instantly, while the receiver's next coalesced ack still reports the
/// epoch current at its last CQ drain — so a stale ack genuinely arrives
/// at the new-epoch channel.
///
/// epoch_fence / multi_lane_ingress: on a single FIFO CQ the data-path
/// head fence is unreachable (QP reset drops held packets, and in-order
/// delivery means no stale data packet can trail the replay that carries
/// the newer epoch). With two ingress lanes it becomes reachable: stale
/// epoch-0 data parks in the receiver's lane-0 CQ while the recovery's
/// epoch announce lands on lane 1; when the lane-drain decision pops the
/// announce first, the receiver adopts the new epoch and the parked data
/// hits the head fence — exactly the cross-lane hazard the fence exists
/// for.
int run_planted_check(const Cli& cli) {
  const int ack = run_one_planted("recovery_flap", "ack_fence", "ack_fence",
                                  cli, /*min_preemptions=*/0);
  const int epoch =
      run_one_planted("multi_lane_ingress", "epoch_fence", "epoch_fence", cli,
                      /*min_preemptions=*/3);
  return ack == 0 && epoch == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = parse_cli(argc, argv);
  if (!cli) {
    usage(stderr);
    return 2;
  }
  if (cli->list) {
    for (const Scenario& s : otm::verify::scenarios())
      std::printf("%-16s %d ranks  %s\n", s.name.c_str(), s.ranks,
                  s.description.c_str());
    return 0;
  }
  if (!cli->replay_file.empty()) return run_replay(*cli);
  if (cli->planted_check) return run_planted_check(*cli);

  bool all_ok = true;
  bool matched = false;
  for (const Scenario& s : otm::verify::scenarios()) {
    if (cli->scenario != "all" && cli->scenario != s.name) continue;
    matched = true;
    all_ok = check_scenario(s, *cli) && all_ok;
  }
  if (!matched) {
    std::fprintf(stderr, "otmcheck: unknown scenario '%s' (try --list)\n",
                 cli->scenario.c_str());
    return 2;
  }
  return all_ok ? 0 : 1;
}
