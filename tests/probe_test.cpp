// Tests for message probing (MPI_Probe/Iprobe semantics): engine-level
// non-destructive UMQ lookup, endpoint routing, and the mini-MPI API on
// offloaded, host-path and software backends.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "mpi/mpi.hpp"

namespace otm {
namespace {

MatchConfig tiny() {
  MatchConfig c;
  c.bins = 8;
  c.block_size = 2;
  c.max_receives = 32;
  c.max_unexpected = 32;
  return c;
}

TEST(EngineProbe, FindsWithoutConsuming) {
  MatchEngine eng(tiny());
  LockstepExecutor ex;
  IncomingMessage m = IncomingMessage::make(2, 7, 0, /*bytes=*/96);
  m.wire_seq = 5;
  eng.process_one(m, ex);

  const auto p1 = eng.probe({2, 7, 0});
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->source, 2);
  EXPECT_EQ(p1->bytes, 96u);
  EXPECT_EQ(p1->wire_seq, 5u);
  // Probing again still finds it: non-destructive.
  EXPECT_TRUE(eng.probe({2, 7, 0}).has_value());
  EXPECT_EQ(eng.unexpected().size(), 1u);
  // The receive then actually consumes it.
  EXPECT_EQ(eng.post_receive({2, 7, 0}).kind,
            PostOutcome::Kind::kMatchedUnexpected);
  EXPECT_FALSE(eng.probe({2, 7, 0}).has_value());
}

TEST(EngineProbe, WildcardProbeSeesOldest) {
  MatchEngine eng(tiny());
  LockstepExecutor ex;
  IncomingMessage a = IncomingMessage::make(1, 1, 0);
  a.wire_seq = 10;
  IncomingMessage b = IncomingMessage::make(2, 2, 0);
  b.wire_seq = 11;
  eng.process_one(a, ex);
  eng.process_one(b, ex);
  const auto p = eng.probe({kAnySource, kAnyTag, 0});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->wire_seq, 10u) << "probe must report the oldest match (C2)";
}

TEST(EngineProbe, NoMatchReturnsEmpty) {
  MatchEngine eng(tiny());
  EXPECT_FALSE(eng.probe({1, 1, 0}).has_value());
}

class MpiProbe : public ::testing::TestWithParam<mpi::Backend> {
 protected:
  mpi::WorldOptions options() const {
    mpi::WorldOptions o;
    o.backend = GetParam();
    return o;
  }
};

TEST_P(MpiProbe, IprobeSeesArrivedMessage) {
  mpi::World world(2, options());
  const mpi::Comm comm = world.proc(0).world_comm();
  EXPECT_FALSE(world.proc(1).iprobe(0, 3, comm));

  std::vector<std::byte> tx(48, std::byte{1});
  world.proc(0).send(tx, 1, 3, comm);
  mpi::Status st;
  ASSERT_TRUE(world.proc(1).iprobe(0, 3, comm, &st));
  EXPECT_EQ(st.source, 0);
  EXPECT_EQ(st.tag, 3);
  EXPECT_EQ(st.bytes, 48u);

  // Probe-then-receive with the probed size (the classic idiom).
  std::vector<std::byte> rx(st.bytes);
  world.proc(1).recv(rx, st.source, st.tag, comm);
  EXPECT_EQ(rx, tx);
  EXPECT_FALSE(world.proc(1).iprobe(0, 3, comm));
}

TEST_P(MpiProbe, WildcardIprobe) {
  mpi::World world(3, options());
  const mpi::Comm comm = world.proc(0).world_comm();
  world.proc(2).send(std::vector<std::byte>(8, std::byte{2}), 0, 9, comm);
  mpi::Status st;
  ASSERT_TRUE(world.proc(0).iprobe(mpi::kAnySource, mpi::kAnyTag, comm, &st));
  EXPECT_EQ(st.source, 2);
  EXPECT_EQ(st.tag, 9);
}

INSTANTIATE_TEST_SUITE_P(Backends, MpiProbe,
                         ::testing::Values(mpi::Backend::kOffloadDpa,
                                           mpi::Backend::kSoftwareList),
                         [](const auto& param_info) {
                           return param_info.param == mpi::Backend::kOffloadDpa
                                      ? "OffloadDpa"
                                      : "SoftwareList";
                         });

TEST(MpiProbe, HostPathCommunicatorProbe) {
  mpi::World world(2, {});
  mpi::CommInfo no_offload;
  no_offload.offload = false;
  const mpi::Comm comm = world.proc(0).comm_create(no_offload);
  world.proc(0).send(std::vector<std::byte>(16, std::byte{4}), 1, 2, comm);
  mpi::Status st;
  ASSERT_TRUE(world.proc(1).iprobe(0, 2, comm, &st));
  EXPECT_EQ(st.bytes, 16u);
  std::vector<std::byte> rx(16);
  world.proc(1).recv(rx, 0, 2, comm);
  EXPECT_EQ(rx[0], std::byte{4});
}

}  // namespace
}  // namespace otm
