#!/usr/bin/env bash
# Repo verification: the tier-1 build+test pass, then a second build with
# AddressSanitizer + UBSan (tests only; benches/examples skipped to keep the
# sanitized run fast), then the chaos suite (label `chaos`) re-run under the
# sanitizers across a seed matrix — each seed reshuffles every fault stream —
# and finally a ThreadSanitizer build running the concurrency suite
# (core_block_test, schedule_fuzz_test, sharded_fuzz_test, stress_test: the
# tests that drive real racing threads through the block matcher and the
# cross-shard claim/label protocol).
#
#   scripts/check.sh            # tier-1 + ASan/UBSan + chaos + TSan
#   scripts/check.sh --fast     # tier-1 only
#   scripts/check.sh --tsan     # TSan pass only (CI runs --fast + --tsan)
#   scripts/check.sh --lint     # static-analysis gate (docs/STATIC_ANALYSIS.md):
#                               #   1. src-only OTM_LINT build (-Werror; plus
#                               #      -Wthread-safety when CXX is clang)
#                               #   2. tools/otmlint fixtures + full tree (R1-R9)
#                               #   3. clang-tidy over src/ (when installed)
#                               #   4. clang static analyzer over src/ (when
#                               #      installed; scripts/clang_analyze.py)
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=all
case "${1:-}" in
  --fast) MODE=fast ;;
  --tsan) MODE=tsan ;;
  --lint) MODE=lint ;;
esac

run_tsan() {
  echo "== sanitizers: TSan build + concurrency suite =="
  cmake -B build-tsan -S . \
    -DOTM_SANITIZE=thread \
    -DOTM_BUILD_BENCH=OFF \
    -DOTM_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build build-tsan -j \
    --target core_block_test schedule_fuzz_test sharded_fuzz_test stress_test
  for t in core_block_test schedule_fuzz_test sharded_fuzz_test stress_test; do
    echo "-- tsan: $t"
    TSAN_OPTIONS=halt_on_error=1 "./build-tsan/tests/$t"
  done
}

run_lint() {
  # Prefer clang so the thread-safety annotations are actually analyzed;
  # fall back to the default compiler (annotations become no-ops, but
  # -Werror and otmlint still gate).
  local lint_cxx="${CXX:-}"
  if [[ -z "$lint_cxx" ]] && command -v clang++ >/dev/null 2>&1; then
    lint_cxx=clang++
  fi

  echo "== lint 1/4: OTM_LINT build (src only, -Werror) =="
  cmake -B build-lint -S . \
    -DOTM_LINT=ON \
    -DOTM_BUILD_TESTS=OFF \
    -DOTM_BUILD_BENCH=OFF \
    -DOTM_BUILD_EXAMPLES=OFF \
    ${lint_cxx:+-DCMAKE_CXX_COMPILER="$lint_cxx"} >/dev/null
  cmake --build build-lint -j

  echo "== lint 2/4: otmlint (fixtures + tree, R1-R9) =="
  python3 tools/otmlint --root . --self-test --fixtures tests/lint_fixtures
  python3 tools/otmlint --root . \
    --compile-commands build-lint/compile_commands.json

  echo "== lint 3/4: clang-tidy (src/) =="
  if command -v clang-tidy >/dev/null 2>&1; then
    find src -name '*.cpp' -print0 |
      xargs -0 -P "$(nproc)" -n 4 clang-tidy -p build-lint --quiet
  else
    echo "-- clang-tidy not installed; skipping (CI lint job runs it)"
  fi

  echo "== lint 4/4: clang static analyzer (src/) =="
  python3 scripts/clang_analyze.py \
    --compile-commands build-lint/compile_commands.json
}

if [[ "$MODE" == "tsan" ]]; then
  run_tsan
  echo "== TSan pass OK =="
  exit 0
fi

if [[ "$MODE" == "lint" ]]; then
  run_lint
  echo "== lint pass OK =="
  exit 0
fi

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "$MODE" == "fast" ]]; then
  echo "== tier-1 OK (sanitizer passes skipped: --fast) =="
  exit 0
fi

echo "== sanitizers: ASan + UBSan build + ctest =="
cmake -B build-asan -S . \
  -DOTM_SANITIZE=address \
  -DOTM_BUILD_BENCH=OFF \
  -DOTM_BUILD_EXAMPLES=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j
UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

echo "== chaos: sanitized fault-injection suite across seeds =="
for seed in 1 7 42 999 123456789; do
  echo "-- chaos seed $seed"
  OTM_CHAOS_SEED=$seed \
  UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
    ctest --test-dir build-asan -L chaos --output-on-failure -j "$(nproc)"
done

run_tsan

echo "== all checks OK =="
