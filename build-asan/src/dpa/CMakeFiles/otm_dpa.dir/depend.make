# Empty dependencies file for otm_dpa.
# This may be replaced when dependencies are built.
