# Empty compiler generated dependencies file for app_characterization_test.
# This may be replaced when dependencies are built.
