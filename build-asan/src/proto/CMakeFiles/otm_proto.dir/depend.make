# Empty dependencies file for otm_proto.
# This may be replaced when dependencies are built.
