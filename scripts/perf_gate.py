#!/usr/bin/env python3
"""Performance gate: diff a candidate benchmark document against the
committed baseline and fail on regressions beyond the noise band.

Usage:
  scripts/perf_gate.py BASELINE.json CANDIDATE.json
                       [--tolerance-modeled 0.03] [--tolerance-walltime 0.35]
                       [--tolerance-drift 0.5] [--allow-missing]
  scripts/perf_gate.py --validate FILE.json
  scripts/perf_gate.py --self-test

Documents are either the merged harness output (bench/harness.py, with a
top-level "benches" map) or a single bench's --json output (bench_json.hpp,
with a top-level "scenarios" list). Scenarios are keyed by (bench, name)
and compared on msgs_per_sec.

Tolerances are per scenario *kind*: "modeled" rates come from the
deterministic cost-model clock, so only a small band covers workload
drift; "walltime" rates are real measurements on a shared machine and get
a wide band. A candidate below baseline * (1 - tolerance) fails the gate.

On top of the per-kind bands, modeled scenarios with a "<name>_wall"
walltime twin are held to a modeled-vs-measured drift band: the
candidate's modeled/measured rate ratio must stay within ±tolerance-drift
of the baseline's ratio. This catches cost-model rot the same-kind bands
cannot — a change that speeds the model up while slowing the real path
down keeps both rates inside their own bands but swings the ratio.

Exit codes: 0 ok, 1 regression (or invalid document), 2 usage error.
No dependencies beyond the Python 3 standard library.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 1
DEFAULT_TOL = {"modeled": 0.03, "walltime": 0.35}
# Modeled-vs-measured drift band. Wider than the walltime band: the ratio
# inherits the measurement's noise on top of any genuine model drift.
DEFAULT_DRIFT_TOL = 0.5


class DocumentError(Exception):
    pass


def _check_scenarios(bench, scenarios):
    if not isinstance(scenarios, list) or not scenarios:
        raise DocumentError(f"{bench}: 'scenarios' must be a non-empty list")
    for s in scenarios:
        if not isinstance(s, dict) or "name" not in s:
            raise DocumentError(f"{bench}: scenario without a name")
        kind = s.get("kind", "modeled")
        if kind not in DEFAULT_TOL:
            raise DocumentError(f"{bench}/{s['name']}: unknown kind {kind!r}")
        rate = s.get("msgs_per_sec")
        if not isinstance(rate, (int, float)) or rate <= 0:
            raise DocumentError(
                f"{bench}/{s['name']}: msgs_per_sec must be a positive number")


def load_scenarios(path):
    """Returns {(bench, scenario_name): scenario_dict}, validating as it goes."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise DocumentError(f"{path}: {e}")
    if not isinstance(doc, dict):
        raise DocumentError(f"{path}: top level must be an object")
    if doc.get("schema_version") != SCHEMA_VERSION:
        raise DocumentError(
            f"{path}: schema_version must be {SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}")
    out = {}
    if "benches" in doc:
        if not isinstance(doc["benches"], dict) or not doc["benches"]:
            raise DocumentError(f"{path}: 'benches' must be a non-empty map")
        for bench, sub in doc["benches"].items():
            _check_scenarios(bench, sub.get("scenarios"))
            for s in sub["scenarios"]:
                out[(bench, s["name"])] = s
    elif "scenarios" in doc:
        bench = doc.get("bench", "?")
        _check_scenarios(bench, doc["scenarios"])
        for s in doc["scenarios"]:
            out[(bench, s["name"])] = s
    else:
        raise DocumentError(f"{path}: need 'benches' or 'scenarios'")
    return out


def gate(baseline, candidate, tol, allow_missing):
    """Compares scenario maps; returns (regressions, lines-of-report)."""
    regressions = []
    report = []
    for key, base in sorted(baseline.items()):
        cand = candidate.get(key)
        name = f"{key[0]}/{key[1]}"
        if cand is None:
            if allow_missing:
                report.append(f"  MISSING  {name} (allowed)")
                continue
            regressions.append(name)
            report.append(f"  MISSING  {name}")
            continue
        kind = base.get("kind", "modeled")
        band = tol[kind]
        b, c = base["msgs_per_sec"], cand["msgs_per_sec"]
        delta = c / b - 1.0
        status = "ok"
        if c < b * (1.0 - band):
            regressions.append(name)
            status = "REGRESSION"
        report.append(f"  {status:10s} {name}: {b:.4g} -> {c:.4g} "
                      f"msgs/s ({delta:+.1%}, band ±{band:.0%}, {kind})")
    for key in sorted(set(candidate) - set(baseline)):
        report.append(f"  NEW      {key[0]}/{key[1]} (not gated)")
    return regressions, report


def drift_pairs(scenarios):
    """Yields (modeled_key, walltime_twin_key) for every "<name>" modeled
    scenario that has a "<name>_wall" walltime twin in the same bench."""
    for (bench, name), s in scenarios.items():
        if s.get("kind", "modeled") != "modeled":
            continue
        twin = scenarios.get((bench, name + "_wall"))
        if twin is not None and twin.get("kind") == "walltime":
            yield (bench, name), (bench, name + "_wall")


def gate_drift(baseline, candidate, tol):
    """Modeled-vs-measured drift check over the twin pairs present in both
    documents; returns (regressions, lines-of-report)."""
    regressions = []
    report = []
    for mkey, wkey in sorted(drift_pairs(baseline)):
        if mkey not in candidate or wkey not in candidate:
            continue  # absences are the plain gate's business
        name = f"{mkey[0]}/{mkey[1]}"
        base_ratio = (baseline[mkey]["msgs_per_sec"] /
                      baseline[wkey]["msgs_per_sec"])
        cand_ratio = (candidate[mkey]["msgs_per_sec"] /
                      candidate[wkey]["msgs_per_sec"])
        rel = cand_ratio / base_ratio - 1.0
        status = "drift-ok"
        if abs(rel) > tol:
            regressions.append(f"{name} (drift)")
            status = "DRIFT"
        report.append(f"  {status:10s} {name}: modeled/measured ratio "
                      f"{base_ratio:.3g} -> {cand_ratio:.3g} "
                      f"({rel:+.1%}, band ±{tol:.0%})")
    return regressions, report


def self_test():
    """In-memory checks of the gate arithmetic and document validation."""
    base = {("f", "nc"): {"kind": "modeled", "msgs_per_sec": 100.0},
            ("m", "bm"): {"kind": "walltime", "msgs_per_sec": 1000.0}}

    # Within band: modeled -2%, walltime -30% -> pass.
    cand = {("f", "nc"): {"kind": "modeled", "msgs_per_sec": 98.0},
            ("m", "bm"): {"kind": "walltime", "msgs_per_sec": 700.0}}
    r, _ = gate(base, cand, DEFAULT_TOL, allow_missing=False)
    assert r == [], f"within-band run flagged: {r}"

    # Modeled regression beyond band -> fail.
    cand[("f", "nc")] = {"kind": "modeled", "msgs_per_sec": 90.0}
    r, _ = gate(base, cand, DEFAULT_TOL, allow_missing=False)
    assert r == ["f/nc"], f"expected f/nc regression, got {r}"

    # Missing scenario -> fail unless allowed.
    del cand[("m", "bm")]
    cand[("f", "nc")] = {"kind": "modeled", "msgs_per_sec": 100.0}
    r, _ = gate(base, cand, DEFAULT_TOL, allow_missing=False)
    assert r == ["m/bm"], f"expected m/bm missing, got {r}"
    r, _ = gate(base, cand, DEFAULT_TOL, allow_missing=True)
    assert r == [], f"allow-missing still flagged: {r}"

    # Drift gate: the modeled/measured ratio must track the baseline's.
    base = {("f", "inc"): {"kind": "modeled", "msgs_per_sec": 1000.0},
            ("f", "inc_wall"): {"kind": "walltime", "msgs_per_sec": 100.0}}
    cand = {("f", "inc"): {"kind": "modeled", "msgs_per_sec": 990.0},
            ("f", "inc_wall"): {"kind": "walltime", "msgs_per_sec": 80.0}}
    r, _ = gate_drift(base, cand, DEFAULT_DRIFT_TOL)  # ratio 10 -> 12.4
    assert r == [], f"in-band drift flagged: {r}"
    # Model got 2x optimistic relative to reality -> ratio doubles -> fail.
    cand[("f", "inc_wall")] = {"kind": "walltime", "msgs_per_sec": 49.0}
    r, _ = gate_drift(base, cand, DEFAULT_DRIFT_TOL)
    assert r == ["f/inc (drift)"], f"expected drift failure, got {r}"
    # Pairs missing from the candidate are skipped (the plain gate reports
    # them), and walltime-only scenarios never form a pair.
    r, _ = gate_drift(base, {}, DEFAULT_DRIFT_TOL)
    assert r == [], f"missing candidate pair flagged: {r}"
    assert list(drift_pairs({("f", "x_wall"):
                             {"kind": "walltime", "msgs_per_sec": 1.0}})) == []

    # Validation rejects malformed scenario lists.
    for bad in ([], [{"kind": "modeled"}],
                [{"name": "x", "kind": "warp", "msgs_per_sec": 1}],
                [{"name": "x", "kind": "modeled", "msgs_per_sec": 0}]):
        try:
            _check_scenarios("b", bad)
        except DocumentError:
            pass
        else:
            raise AssertionError(f"validation accepted {bad!r}")

    print("self-test OK")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("candidate", nargs="?")
    ap.add_argument("--tolerance-modeled", type=float,
                    default=DEFAULT_TOL["modeled"])
    ap.add_argument("--tolerance-walltime", type=float,
                    default=DEFAULT_TOL["walltime"])
    ap.add_argument("--tolerance-drift", type=float,
                    default=DEFAULT_DRIFT_TOL,
                    help="allowed relative change of each modeled/measured "
                         "rate ratio vs the baseline's")
    ap.add_argument("--allow-missing", action="store_true",
                    help="baseline scenarios absent from the candidate "
                         "are reported but not fatal")
    ap.add_argument("--validate", metavar="FILE",
                    help="only validate FILE against the schema")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        self_test()
        return 0
    if args.validate:
        try:
            scenarios = load_scenarios(args.validate)
        except DocumentError as e:
            print(f"perf_gate: invalid: {e}", file=sys.stderr)
            return 1
        print(f"{args.validate}: valid ({len(scenarios)} scenarios)")
        return 0
    if not args.baseline or not args.candidate:
        ap.error("need BASELINE and CANDIDATE (or --validate / --self-test)")

    try:
        baseline = load_scenarios(args.baseline)
        candidate = load_scenarios(args.candidate)
    except DocumentError as e:
        print(f"perf_gate: invalid: {e}", file=sys.stderr)
        return 1

    tol = {"modeled": args.tolerance_modeled,
           "walltime": args.tolerance_walltime}
    regressions, report = gate(baseline, candidate, tol, args.allow_missing)
    drift_regressions, drift_report = gate_drift(baseline, candidate,
                                                 args.tolerance_drift)
    regressions += drift_regressions
    report += drift_report
    print(f"perf gate: {args.candidate} vs {args.baseline}")
    for line in report:
        print(line)
    if regressions:
        print(f"perf gate: FAIL ({len(regressions)} regression(s): "
              f"{', '.join(regressions)})")
        return 1
    print("perf gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
