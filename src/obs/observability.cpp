#include "obs/observability.hpp"

#include <ostream>

namespace otm::obs {

Observability::Observability(const ObsConfig& cfg) : cfg_(cfg) {
  if (cfg.trace) tracer_ = std::make_unique<Tracer>(cfg.trace_capacity);
  if (cfg.metrics) metrics_ = std::make_unique<MetricsRegistry>();
  if (cfg.sampler) sampler_ = std::make_unique<DepthSampler>(cfg.sample_interval);
}

void Observability::write_trace_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  if (tracer_ != nullptr)
    for (const TraceEvent& e : tracer_->snapshot())
      write_chrome_event(os, e, first);
  if (sampler_ != nullptr) {
    // One Perfetto counter track per series: lane encodes the series index
    // so tracks do not merge; the series name becomes the counter name.
    std::uint32_t lane = 1000;  // clear of block-thread lanes
    for (const std::string& name : sampler_->series_names()) {
      for (const DepthSampler::Point& p : sampler_->points(name)) {
        if (!first) os << ",\n";
        first = false;
        os << "  {\"name\":\"" << name << "\",\"ph\":\"C\",\"ts\":" << p.t
           << ",\"pid\":0,\"tid\":" << lane << ",\"args\":{\"value\":"
           << p.value << "}}";
      }
      ++lane;
    }
  }
  os << "\n]}\n";
}

void Observability::write_metrics_json(std::ostream& os) const {
  if (metrics_ != nullptr) {
    metrics_->write_json(os);
  } else {
    os << "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}\n";
  }
}

void Observability::write_metrics_csv(std::ostream& os) const {
  if (metrics_ != nullptr) {
    metrics_->write_csv(os);
  } else {
    os << "kind,name,field,value\n";
  }
}

void Observability::write_samples_csv(std::ostream& os) const {
  if (sampler_ != nullptr) {
    sampler_->write_csv(os);
  } else {
    os << "series,t,value\n";
  }
}

}  // namespace otm::obs
