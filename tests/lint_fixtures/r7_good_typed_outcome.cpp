// otmlint-fixture: src/proto/fixture.cpp
// R7 good twin: runtime errors surface as typed outcomes; OTM_ASSERT-style
// invariant traps and static_assert are not error paths and stay legal.
#include <cstdint>

#define OTM_ASSERT(cond) ((void)(cond))

namespace otm::proto {

enum class Outcome : std::uint8_t { kOk, kFailed, kPeerDead };

static_assert(sizeof(Outcome) == 1, "wire-stable");

Outcome deliver(int status) {
  OTM_ASSERT(status >= -2);  // programming-error trap, not an error path
  if (status == -1) return Outcome::kFailed;
  if (status == -2) return Outcome::kPeerDead;
  return Outcome::kOk;
}

}  // namespace otm::proto
