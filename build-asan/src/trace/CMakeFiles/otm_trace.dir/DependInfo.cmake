
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/analyzer.cpp" "src/trace/CMakeFiles/otm_trace.dir/analyzer.cpp.o" "gcc" "src/trace/CMakeFiles/otm_trace.dir/analyzer.cpp.o.d"
  "/root/repo/src/trace/cache.cpp" "src/trace/CMakeFiles/otm_trace.dir/cache.cpp.o" "gcc" "src/trace/CMakeFiles/otm_trace.dir/cache.cpp.o.d"
  "/root/repo/src/trace/dumpi_text.cpp" "src/trace/CMakeFiles/otm_trace.dir/dumpi_text.cpp.o" "gcc" "src/trace/CMakeFiles/otm_trace.dir/dumpi_text.cpp.o.d"
  "/root/repo/src/trace/jsonl.cpp" "src/trace/CMakeFiles/otm_trace.dir/jsonl.cpp.o" "gcc" "src/trace/CMakeFiles/otm_trace.dir/jsonl.cpp.o.d"
  "/root/repo/src/trace/ops.cpp" "src/trace/CMakeFiles/otm_trace.dir/ops.cpp.o" "gcc" "src/trace/CMakeFiles/otm_trace.dir/ops.cpp.o.d"
  "/root/repo/src/trace/synthetic.cpp" "src/trace/CMakeFiles/otm_trace.dir/synthetic.cpp.o" "gcc" "src/trace/CMakeFiles/otm_trace.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/otm_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/otm_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/obs/CMakeFiles/otm_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
