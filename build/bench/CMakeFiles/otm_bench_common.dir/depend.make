# Empty dependencies file for otm_bench_common.
# This may be replaced when dependencies are built.
