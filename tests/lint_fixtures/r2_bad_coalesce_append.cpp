// otmlint-fixture: src/proto/fixture.cpp
// R2 bad twin (channel coalescing path): the hot per-send append into a
// channel's merge buffer grows the buffer instead of writing into the
// capacity reserved when the channel was created.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace otm {

struct Channel {
  std::vector<std::byte> buf;
  std::size_t buf_bytes = 0;
};

// otmlint: hot
void coalesce_append(Channel& ch, const std::byte* data, std::size_t n) {
  ch.buf.insert(ch.buf.end(), data, data + n);  // growth on the send path
  ch.buf_bytes += n;
}

}  // namespace otm
