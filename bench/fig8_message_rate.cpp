// Figure 8 — single-process message rate for the different configurations:
// optimistic tag matching on the DPA (no-conflict NC, with-conflict fast
// path WC-FP, with-conflict slow path WC-SP), MPI tag matching on the CPU
// (MPI-CPU) and message exchange using RDMA on the CPU (RDMA-CPU).
//
// Methodology (Sec. VI): ping-pong sequences of k=100 small messages,
// 500 repetitions, 1024 in-flight receives, hash tables twice that size,
// 32 DPA threads. Rates are modeled (see DESIGN.md §6): the matching logic
// runs for real, the clock is the calibrated cost model.
//
// Shape checks: RDMA-CPU >= MPI-CPU ~ Optimistic-NC > WC-FP > WC-SP, and
// host matching cycles are zero for every offloaded configuration.
//
// Observability: --trace-out=f.json / --metrics-out=f.json record the
// offloaded scenarios (per-endpoint counters, matcher events, depth
// series) under "<scenario>." prefixes.
//
// Harness: --json=f.json writes the schema-versioned per-scenario results
// (see bench_json.hpp); --smoke pins a tiny repetition count for the
// tier-1 perf-smoke tests and always exits 0 (the shape checks still
// print but only gate the full-length run).
#include <cstdio>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>

#include "bench_json.hpp"
#include "obs/observability.hpp"
#include "pingpong_common.hpp"
#include "util/args.hpp"
#include "util/table_writer.hpp"

using namespace otm;
using namespace otm::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const std::string json_out = args.get("json", "");
  const std::string trace_out = args.get("trace-out", "");
  const std::string metrics_out = args.get("metrics-out", "");
  std::unique_ptr<obs::Observability> obs;
  if (!trace_out.empty() || !metrics_out.empty())
    obs = std::make_unique<obs::Observability>(obs::ObsConfig::enabled());

  PingPongConfig base;
  base.obs = obs.get();
  base.messages_per_seq =
      static_cast<unsigned>(args.get_int("k", base.messages_per_seq));
  base.repetitions = static_cast<unsigned>(
      args.get_int("reps", smoke ? 10 : static_cast<int>(base.repetitions)));
  base.payload_bytes =
      static_cast<std::uint32_t>(args.get_int("bytes", base.payload_bytes));
  // Deterministic lockstep replay needs the early booking check off for the
  // WC scenarios to exhibit the paper's conflict behavior (the check would
  // otherwise observe serialized bookings and dodge every conflict).
  base.match.early_booking_check = false;

  // Optional fault injection for the offloaded scenarios only: the host
  // baselines model a reliable transport (raw post_send with no retransmit
  // layer), so faults would only abort them. The DPA endpoints auto-enable
  // the reliable-delivery sublayer when the fabric injects faults, and the
  // measured rate then includes retransmission/backoff latency.
  rdma::FaultConfig fault;
  fault.drop_probability = args.get_double("fault-drop", 0.0);
  fault.duplicate_probability = args.get_double("fault-dup", 0.0);
  fault.corrupt_probability = args.get_double("fault-corrupt", 0.0);
  fault.reorder_probability = args.get_double("fault-reorder", 0.0);
  fault.seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 42));
  fault.enabled = args.get_bool("faults", false) ||
                  fault.drop_probability > 0.0 ||
                  fault.duplicate_probability > 0.0 ||
                  fault.corrupt_probability > 0.0 ||
                  fault.reorder_probability > 0.0;

  std::printf("Figure 8: single-process message rate (k=%u msgs/seq, %u reps, "
              "%uB payloads, %zu in-flight receives, %u DPA threads)\n\n",
              base.messages_per_seq, base.repetitions, base.payload_bytes,
              base.match.max_receives, base.match.block_size);
  if (fault.enabled)
    std::printf("fault injection ON for offloaded scenarios (seed=%llu, "
                "drop=%.3f dup=%.3f corrupt=%.3f reorder=%.3f); offloaded "
                "rates include retransmission latency\n\n",
                static_cast<unsigned long long>(fault.seed),
                fault.drop_probability, fault.duplicate_probability,
                fault.corrupt_probability, fault.reorder_probability);

  TableWriter table({"configuration", "message rate", "Mmsg/s", "seq time (us)",
                     "host match cycles/msg", "conflicts/seq", "resolution"});

  const double per_msg =
      static_cast<double>(base.messages_per_seq) * base.repetitions;

  struct Row {
    const char* name;
    const char* json_name;
    PingPongResult r;
  };
  std::vector<Row> rows;

  {
    PingPongConfig cfg = base;  // NC: distinct source/tag per receive
    cfg.with_conflict = false;
    cfg.fabric.fault = fault;
    cfg.obs_prefix = "nc.";
    rows.push_back({"Optimistic-DPA NC", "optimistic_nc", run_optimistic_dpa(cfg)});
  }
  {
    PingPongConfig cfg = base;  // WC-FP: same source/tag, fast path on
    cfg.with_conflict = true;
    cfg.match.enable_fast_path = true;
    cfg.fabric.fault = fault;
    cfg.obs_prefix = "wc_fp.";
    rows.push_back(
        {"Optimistic-DPA WC-FP", "optimistic_wc_fp", run_optimistic_dpa(cfg)});
  }
  {
    PingPongConfig cfg = base;  // WC-SP: same source/tag, fast path off
    cfg.with_conflict = true;
    cfg.match.enable_fast_path = false;
    cfg.fabric.fault = fault;
    cfg.obs_prefix = "wc_sp.";
    rows.push_back(
        {"Optimistic-DPA WC-SP", "optimistic_wc_sp", run_optimistic_dpa(cfg)});
  }
  {
    PingPongConfig cfg = base;
    cfg.with_conflict = false;
    rows.push_back({"MPI-CPU", "mpi_cpu", run_mpi_cpu(cfg)});
  }
  {
    PingPongConfig cfg = base;
    cfg.with_conflict = false;
    rows.push_back({"RDMA-CPU (no matching)", "rdma_cpu", run_rdma_cpu(cfg)});
  }

  // Sharded incast (docs/SHARDING.md): 4 senders stream at one receiver
  // whose engine is split into --shards source-routed engines (default: the
  // {1,2,4} sweep). s=1 is the paper's single-serializer DPA on the same
  // traffic; the s=4/s=1 ratio is the modeled sharding win.
  const int shards_arg = args.get_int("shards", 0);
  std::vector<unsigned> shard_counts = {1, 2, 4};
  if (shards_arg > 0) shard_counts = {static_cast<unsigned>(shards_arg)};
  double incast_s1 = 0.0, incast_s4 = 0.0;
  std::deque<std::string> shard_names;  // stable storage for Row pointers
  for (const unsigned s : shard_counts) {
    PingPongConfig cfg = base;
    cfg.with_conflict = false;
    cfg.fabric.fault = fault;
    cfg.obs_prefix = "incast_s" + std::to_string(s) + ".";
    const std::string& name =
        shard_names.emplace_back("Sharded incast s=" + std::to_string(s));
    const std::string& json_name =
        shard_names.emplace_back("sharded_incast_s" + std::to_string(s));
    const PingPongResult r = run_sharded_incast(cfg, s);
    if (s == 1) incast_s1 = r.msg_rate;
    if (s == 4) incast_s4 = r.msg_rate;
    rows.push_back({name.c_str(), json_name.c_str(), r});
  }

  for (const Row& row : rows) {
    const PingPongResult& r = row.r;
    std::string resolution = "-";
    if (r.fast_path + r.slow_path > 0)
      resolution = r.fast_path >= r.slow_path ? "fast path" : "slow path";
    table.row()
        .cell(row.name)
        .cell(fmt_rate(r.msg_rate))
        .cell(r.msg_rate / 1e6, 2)
        .cell(r.avg_seq_ns / 1e3, 2)
        .cell(static_cast<double>(r.host_match_cycles) / per_msg, 1)
        .cell(static_cast<double>(r.conflicts) / base.repetitions, 1)
        .cell(resolution);
  }
  table.print(std::cout);

  if (obs != nullptr) {
    const auto report = [](const std::ofstream& os, const char* what,
                           const std::string& file) {
      std::fprintf(stderr, os.good() ? "%s written to %s\n"
                                     : "error: cannot write %s to %s\n",
                   what, file.c_str());
    };
    if (!trace_out.empty()) {
      std::ofstream os(trace_out);
      obs->write_trace_json(os);
      report(os, "trace", trace_out);
    }
    if (!metrics_out.empty()) {
      std::ofstream os(metrics_out);
      obs->write_metrics_json(os);
      report(os, "metrics", metrics_out);
    }
  }

  if (!json_out.empty()) {
    BenchJsonDoc doc;
    doc.bench = "fig8_message_rate";
    doc.smoke = smoke;
    doc.config = {
        {"k", static_cast<double>(base.messages_per_seq)},
        {"reps", static_cast<double>(base.repetitions)},
        {"payload_bytes", static_cast<double>(base.payload_bytes)},
        {"block_size", static_cast<double>(base.match.block_size)},
        {"bins", static_cast<double>(base.match.bins)},
        {"max_receives", static_cast<double>(base.match.max_receives)},
        {"faults", fault.enabled ? 1.0 : 0.0},
        {"fault_seed", static_cast<double>(fault.seed)},
    };
    for (const Row& row : rows) {
      ScenarioRecord s;
      s.name = row.json_name;
      s.kind = "modeled";
      s.msgs_per_sec = row.r.msg_rate;
      s.ns_per_msg =
          row.r.avg_seq_ns / static_cast<double>(base.messages_per_seq);
      s.p50_seq_ns = percentile(row.r.seq_ns, 50.0);
      s.p99_seq_ns = percentile(row.r.seq_ns, 99.0);
      s.host_match_cycles_per_msg =
          static_cast<double>(row.r.host_match_cycles) / per_msg;
      s.conflicts_per_seq =
          static_cast<double>(row.r.conflicts) / base.repetitions;
      doc.scenarios.push_back(std::move(s));
    }
    if (!write_bench_json(json_out, doc)) {
      std::fprintf(stderr, "error: cannot write json to %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "json written to %s\n", json_out.c_str());
  }

  // Shape verification against the paper's figure.
  const double nc = rows[0].r.msg_rate;
  const double wc_fp = rows[1].r.msg_rate;
  const double wc_sp = rows[2].r.msg_rate;
  const double mpi_cpu = rows[3].r.msg_rate;
  const double rdma_cpu = rows[4].r.msg_rate;
  const bool order_ok = rdma_cpu >= mpi_cpu && nc > wc_fp && wc_fp > wc_sp;
  // Retransmission latency only taxes the offloaded scenarios (the host
  // baselines run on a clean fabric), so the cross-family comparison is
  // meaningless under injected faults.
  const bool comparable =
      fault.enabled || (nc > 0.5 * mpi_cpu && nc < 2.0 * mpi_cpu);
  const bool offloaded = rows[0].r.host_match_cycles == 0 &&
                         rows[1].r.host_match_cycles == 0 &&
                         rows[2].r.host_match_cycles == 0;
  std::printf("\nshape: RDMA-CPU >= MPI-CPU, NC > WC-FP > WC-SP ........ %s\n",
              order_ok ? "OK" : "VIOLATED");
  std::printf("shape: Optimistic-NC comparable to MPI-CPU (0.5x-2x) ... %s "
              "(ratio %.2f)\n",
              comparable ? "OK" : "VIOLATED", nc / mpi_cpu);
  std::printf("shape: offload frees the host CPU (0 match cycles) ..... %s\n",
              offloaded ? "OK" : "VIOLATED");
  // The sharded check only applies when the {1,4} pair actually ran (the
  // default sweep, or no --shards narrowing). Under injected faults
  // retransmission latency dominates the incast, so — like the comparable
  // check above — the speedup band is informational only.
  bool sharding_ok = true;
  if (incast_s1 > 0.0 && incast_s4 > 0.0) {
    sharding_ok = fault.enabled || incast_s4 >= 1.5 * incast_s1;
    std::printf("shape: sharded incast s=4 >= 1.5x s=1 .................. %s "
                "(ratio %.2f)\n",
                sharding_ok ? "OK" : "VIOLATED", incast_s4 / incast_s1);
  }
  // Smoke runs are too short for the shape band to be meaningful; they
  // gate only on "ran to completion and wrote valid output".
  if (smoke) return 0;
  return (order_ok && comparable && offloaded && sharding_ok) ? 0 : 1;
}
