// Invariant tests over the synthetic application suite: Table-II process
// counts, send/receive balance, call-mix expectations from Fig. 6 (three
// pure-p2p apps, two collective-only apps, no one-sided anywhere), and a
// full analyzer pass over the lighter apps.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/analyzer.hpp"
#include "trace/synthetic.hpp"

namespace otm::trace {
namespace {

TEST(Suite, SixteenAppsWithTableIIProcessCounts) {
  const auto suite = application_suite();
  ASSERT_EQ(suite.size(), 16u);
  const std::map<std::string, int> expected = {
      {"AMG", 8},          {"AMR-MiniApp", 64},      {"BigFFT", 1024},
      {"BoxLib-CNS", 64},  {"BoxLib-MultiGrid", 64}, {"CrystalRouter", 100},
      {"FillBoundary", 1000}, {"HILO", 256},         {"HILO-2D", 256},
      {"LULESH", 64},      {"MiniFE", 1152},         {"MOCFE", 64},
      {"MultiGrid", 1000}, {"Nekbone", 64},          {"PARTISN", 168},
      {"SNAP", 168},
  };
  for (const AppInfo& app : suite) {
    const auto it = expected.find(app.name);
    ASSERT_NE(it, expected.end()) << "unexpected app " << app.name;
    EXPECT_EQ(app.processes, it->second) << app.name;
  }
}

TEST(Suite, FindAppLookup) {
  EXPECT_NE(find_app("LULESH"), nullptr);
  EXPECT_EQ(find_app("NotAnApp"), nullptr);
  EXPECT_STREQ(find_app("SNAP")->description,
               "Proxy application for the PARTISN communication pattern");
}

struct OpCounts {
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t collectives = 0;
  std::uint64_t one_sided = 0;
  std::uint64_t wildcard_recvs = 0;
};

OpCounts count_ops(const Trace& t) {
  OpCounts c;
  for (const auto& r : t.ranks) {
    for (const auto& op : r.ops) {
      switch (op.type) {
        case OpType::kSend:
        case OpType::kIsend:
          ++c.sends;
          break;
        case OpType::kRecv:
        case OpType::kIrecv:
          ++c.recvs;
          if (op.peer == kAnySource || op.tag == kAnyTag) ++c.wildcard_recvs;
          break;
        default:
          if (category_of(op.type) == OpCategory::kCollective) ++c.collectives;
          if (category_of(op.type) == OpCategory::kOneSided) ++c.one_sided;
      }
    }
  }
  return c;
}

class SuiteInvariants : public ::testing::TestWithParam<const AppInfo*> {};

TEST_P(SuiteInvariants, GeneratesConsistentTrace) {
  const AppInfo& app = *GetParam();
  const Trace t = app.make();
  EXPECT_EQ(t.num_ranks, app.processes);
  EXPECT_EQ(t.ranks.size(), static_cast<std::size_t>(app.processes));
  EXPECT_GT(t.total_ops(), 0u);

  const OpCounts c = count_ops(t);
  EXPECT_EQ(c.sends, c.recvs) << "every send needs exactly one receive";
  EXPECT_EQ(c.one_sided, 0u) << "no analyzed app uses one-sided MPI (Fig. 6)";

  // Every send targets a valid rank and no rank sends to itself.
  for (const auto& r : t.ranks)
    for (const auto& op : r.ops)
      if (op.type == OpType::kSend || op.type == OpType::kIsend) {
        EXPECT_GE(op.peer, 0);
        EXPECT_LT(op.peer, t.num_ranks);
        EXPECT_NE(op.peer, r.rank);
      }
}

TEST_P(SuiteInvariants, DeterministicGeneration) {
  const AppInfo& app = *GetParam();
  if (app.processes > 300) GTEST_SKIP() << "large app: covered by smaller ones";
  EXPECT_EQ(app.make(), app.make());
}

std::vector<const AppInfo*> suite_ptrs() {
  std::vector<const AppInfo*> v;
  for (const AppInfo& a : application_suite()) v.push_back(&a);
  return v;
}

INSTANTIATE_TEST_SUITE_P(Apps, SuiteInvariants, ::testing::ValuesIn(suite_ptrs()),
                         [](const auto& param_info) {
                           std::string n = param_info.param->name;
                           for (char& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST(SuiteMix, ThreePureP2pApps) {
  std::set<std::string> pure;
  for (const AppInfo& app : application_suite()) {
    const OpCounts c = count_ops(app.make());
    if (c.sends > 0 && c.collectives == 0) pure.insert(app.name);
  }
  EXPECT_EQ(pure, (std::set<std::string>{"BigFFT", "CrystalRouter",
                                         "FillBoundary"}))
      << "Fig. 6: exactly three applications use p2p exclusively";
}

TEST(SuiteMix, TwoCollectiveOnlyApps) {
  std::set<std::string> pure;
  for (const AppInfo& app : application_suite()) {
    const OpCounts c = count_ops(app.make());
    if (c.sends == 0 && c.collectives > 0) pure.insert(app.name);
  }
  EXPECT_EQ(pure, (std::set<std::string>{"HILO", "HILO-2D"}))
      << "Fig. 6: the two HILO variants rely entirely on collectives";
}

TEST(SuiteMix, WildcardUsageIsRare) {
  std::uint64_t wild = 0;
  std::uint64_t total = 0;
  for (const AppInfo& app : application_suite()) {
    const OpCounts c = count_ops(app.make());
    wild += c.wildcard_recvs;
    total += c.recvs;
  }
  EXPECT_GT(wild, 0u) << "some apps do use wildcards";
  EXPECT_LT(static_cast<double>(wild) / static_cast<double>(total), 0.10)
      << "wildcard receives are the exception, not the rule";
}

TEST(SuiteAnalysis, CnsIsTheDeepQueueOutlier) {
  // Paper: BoxLib CNS max queue depth ~25 with one bin, ~1 with 128.
  AnalyzerConfig one_bin;
  one_bin.bins = 1;
  AnalyzerConfig many_bins;
  many_bins.bins = 128;
  const Trace cns = make_boxlib_cns();
  const auto deep = TraceAnalyzer(one_bin).analyze(cns);
  const auto shallow = TraceAnalyzer(many_bins).analyze(cns);
  EXPECT_GE(deep.max_queue_depth, 20u);
  EXPECT_LE(shallow.max_queue_depth, 4u);
}

TEST(SuiteAnalysis, BinsReduceDepthAcrossLightApps) {
  // The Fig. 7 claim on the sub-second apps of the suite: 32 bins cut the
  // average queue depth by an order of magnitude.
  for (const char* name : {"AMG", "LULESH", "Nekbone", "MOCFE"}) {
    const AppInfo* app = find_app(name);
    ASSERT_NE(app, nullptr);
    const Trace t = app->make();
    AnalyzerConfig c1;
    c1.bins = 1;
    AnalyzerConfig c32;
    c32.bins = 32;
    const auto a1 = TraceAnalyzer(c1).analyze(t);
    const auto a32 = TraceAnalyzer(c32).analyze(t);
    EXPECT_LT(a32.avg_queue_depth, a1.avg_queue_depth) << name;
  }
}

TEST(SuiteAnalysis, CollectiveOnlyAppHasNoMatchingTraffic) {
  const auto a = TraceAnalyzer(AnalyzerConfig{}).analyze(make_hilo());
  EXPECT_EQ(a.messages, 0u);
  EXPECT_EQ(a.receives_posted, 0u);
  EXPECT_GT(a.calls.collective, 0u);
  EXPECT_DOUBLE_EQ(a.calls.pct_collective(), 100.0);
}

}  // namespace
}  // namespace otm::trace
