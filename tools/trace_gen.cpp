// otm-tracegen: emit the synthetic application suite (or one app) as
// sst-dumpi-shaped text trace directories, ready for otm-analyzer or any
// other DUMPI consumer.
//
//   $ otm-tracegen --out=traces              # all 16 Table-II apps
//   $ otm-tracegen --out=traces --app=LULESH
#include <cstdio>
#include <filesystem>

#include "trace/dumpi_text.hpp"
#include "trace/synthetic.hpp"
#include "util/args.hpp"

using namespace otm;
using namespace otm::trace;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::string out = args.get("out", "traces");
  const std::string only = args.get("app", "");

  for (const AppInfo& app : application_suite()) {
    if (!only.empty() && only != app.name) continue;
    const Trace t = app.make();
    const std::string dir =
        (std::filesystem::path(out) / app.name).string();
    const std::string meta = write_trace_dir(t, dir);
    std::printf("%-18s %5d ranks  %9zu ops  -> %s\n", app.name, t.num_ranks,
                t.total_ops(), meta.c_str());
  }
  return 0;
}
