// Tests for the RDMA substrate: memory registration, bounce pools, CQ
// ordering/overrun, QP send/recv data movement, RNR behavior, RDMA reads
// and the link latency/serialization model.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "rdma/completion_queue.hpp"
#include "rdma/fabric.hpp"
#include "rdma/memory.hpp"

namespace otm::rdma {
namespace {

std::vector<std::byte> pattern(std::size_t n, int seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 31 + static_cast<std::size_t>(seed)) & 0xFF);
  return v;
}

// --- MemoryRegistry -----------------------------------------------------------

TEST(MemoryRegistry, ResolveWithinBounds) {
  std::vector<std::byte> region(128);
  MemoryRegistry reg;
  const auto rkey = reg.register_region(region);
  const auto span = reg.resolve(rkey, 32, 64);
  EXPECT_EQ(span.data(), region.data() + 32);
  EXPECT_EQ(span.size(), 64u);
}

TEST(MemoryRegistry, OutOfBoundsFaults) {
  std::vector<std::byte> region(128);
  MemoryRegistry reg;
  const auto rkey = reg.register_region(region);
  EXPECT_DEATH(reg.resolve(rkey, 100, 64), "out of bounds");
  EXPECT_DEATH(reg.resolve(rkey + 1, 0, 1), "unknown rkey");
}

// --- BounceBufferPool ----------------------------------------------------------

TEST(BounceBufferPool, AllocateReleaseCycle) {
  BounceBufferPool pool(4, 256);
  EXPECT_EQ(pool.capacity(), 4u);
  std::vector<std::uint64_t> handles;
  for (int i = 0; i < 4; ++i) {
    const auto h = pool.allocate();
    ASSERT_TRUE(h.has_value());
    handles.push_back(*h);
  }
  EXPECT_FALSE(pool.allocate().has_value()) << "pool exhausted";
  pool.release(handles[2]);
  EXPECT_TRUE(pool.allocate().has_value());
}

TEST(BounceBufferPool, BuffersAreDisjoint) {
  BounceBufferPool pool(3, 64);
  const auto a = *pool.allocate();
  const auto b = *pool.allocate();
  std::memset(pool.data(a).data(), 0xAA, 64);
  std::memset(pool.data(b).data(), 0xBB, 64);
  EXPECT_EQ(static_cast<unsigned char>(pool.data(a)[0]), 0xAA);
  EXPECT_EQ(static_cast<unsigned char>(pool.data(b)[0]), 0xBB);
}

// --- CompletionQueue -----------------------------------------------------------

TEST(CompletionQueue, FifoOrderAndSequence) {
  CompletionQueue cq(8);
  for (std::uint64_t i = 0; i < 3; ++i) cq.push({.wr_id = 100 + i});
  for (std::uint64_t i = 0; i < 3; ++i) {
    const auto e = cq.poll();
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->wr_id, 100 + i);
    EXPECT_EQ(e->sequence, i);
  }
  EXPECT_FALSE(cq.poll().has_value());
}

TEST(CompletionQueue, OverrunRejected) {
  CompletionQueue cq(2);
  EXPECT_TRUE(cq.push({}));
  EXPECT_TRUE(cq.push({}));
  EXPECT_FALSE(cq.push({}));
}

TEST(CompletionQueue, PeekSequenceForPerThreadPolling) {
  CompletionQueue cq(8);
  for (std::uint64_t i = 0; i < 5; ++i) cq.push({.wr_id = i});
  // Thread 1 of a block of 2 polls sequence 1, 3, ...
  EXPECT_EQ(cq.peek_sequence(1)->wr_id, 1u);
  EXPECT_EQ(cq.peek_sequence(3)->wr_id, 3u);
  EXPECT_FALSE(cq.peek_sequence(7).has_value());
  cq.consume_through(2);
  EXPECT_FALSE(cq.peek_sequence(1).has_value());
  EXPECT_EQ(cq.available(), 2u);
}

// --- Fabric / QueuePair --------------------------------------------------------

struct TwoNodes {
  Fabric fabric;
  MemoryRegistry reg_a, reg_b;
  CompletionQueue cq_a{64}, cq_b{64};
  SharedReceiveQueue srq_a, srq_b;
  NodeId na, nb;
  QueuePair qa, qb;

  TwoNodes()
      : fabric(FabricConfig{}),
        na(fabric.add_node()),
        nb(fabric.add_node()),
        qa(fabric, na, cq_a, reg_a, srq_a),
        qb(fabric, nb, cq_b, reg_b, srq_b) {
    qa.connect(qb);
  }
};

TEST(QueuePair, SendMovesBytesAndCompletes) {
  TwoNodes t;
  std::vector<std::byte> rx(64);
  t.qb.post_recv(7, rx);
  const auto data = pattern(48);
  const auto r = t.qa.post_send(data, /*send_ns=*/1000);
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.recv_wr_id, 7u);
  EXPECT_GT(r.arrival_ns, 1000u + 500u) << "wire latency applies";
  EXPECT_TRUE(std::equal(data.begin(), data.end(), rx.begin()));
  const auto cqe = t.cq_b.poll();
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->wr_id, 7u);
  EXPECT_EQ(cqe->byte_len, 48u);
  EXPECT_EQ(cqe->timestamp_ns, r.arrival_ns);
}

TEST(QueuePair, RnrWhenNoReceivePosted) {
  TwoNodes t;
  const auto data = pattern(16);
  const auto r = t.qa.post_send(data, 0);
  EXPECT_FALSE(r.delivered);
}

TEST(QueuePair, ReceivesConsumedInOrder) {
  TwoNodes t;
  std::vector<std::byte> rx1(64);
  std::vector<std::byte> rx2(64);
  t.qb.post_recv(1, rx1);
  t.qb.post_recv(2, rx2);
  EXPECT_EQ(t.qa.post_send(pattern(8, 1), 0).recv_wr_id, 1u);
  EXPECT_EQ(t.qa.post_send(pattern(8, 2), 0).recv_wr_id, 2u);
}

TEST(QueuePair, RdmaReadPullsRemoteData) {
  TwoNodes t;
  auto remote = pattern(256, 9);
  const auto rkey = t.reg_b.register_region(remote);
  std::vector<std::byte> local(128);
  const auto done = t.qa.rdma_read(rkey, 64, local, /*issue_ns=*/500);
  EXPECT_TRUE(std::equal(local.begin(), local.end(), remote.begin() + 64));
  EXPECT_GT(done, 500u + 2 * 600u) << "round trip costs two wire latencies";
}

TEST(Fabric, LinkSerializesBackToBackMessages) {
  Fabric f{FabricConfig{}};
  const auto a = f.add_node();
  const auto b = f.add_node();
  const auto t1 = f.transfer(a, b, 4096, 0);
  const auto t2 = f.transfer(a, b, 4096, 0);
  EXPECT_GT(t2, t1) << "second message queues behind the first";
  // Reverse direction is an independent link.
  const auto t3 = f.transfer(b, a, 4096, 0);
  EXPECT_EQ(t3, t1);
}

TEST(Fabric, BandwidthTermScalesWithSize) {
  FabricConfig cfg;
  cfg.wire_latency_ns = 0;
  cfg.bandwidth_bytes_per_ns = 1.0;
  Fabric f{cfg};
  const auto a = f.add_node();
  const auto b = f.add_node();
  EXPECT_EQ(f.transfer(a, b, 1000, 0), 1000u);
}

TEST(SharedReceiveQueue, SharedAcrossQps) {
  // Two senders to one receiver draw from the same staging queue.
  Fabric fabric{FabricConfig{}};
  MemoryRegistry reg_r, reg_s1, reg_s2;
  CompletionQueue cq_r{64}, cq_s1{64}, cq_s2{64};
  SharedReceiveQueue srq_r, srq_s1, srq_s2;
  const auto nr = fabric.add_node();
  const auto n1 = fabric.add_node();
  const auto n2 = fabric.add_node();
  QueuePair qr1(fabric, nr, cq_r, reg_r, srq_r);
  QueuePair qr2(fabric, nr, cq_r, reg_r, srq_r);
  QueuePair qs1(fabric, n1, cq_s1, reg_s1, srq_s1);
  QueuePair qs2(fabric, n2, cq_s2, reg_s2, srq_s2);
  qs1.connect(qr1);
  qs2.connect(qr2);

  std::vector<std::byte> rx1(32);
  std::vector<std::byte> rx2(32);
  srq_r.post(11, rx1);
  srq_r.post(22, rx2);
  EXPECT_EQ(qs1.post_send(pattern(8), 0).recv_wr_id, 11u);
  EXPECT_EQ(qs2.post_send(pattern(8), 0).recv_wr_id, 22u);
  EXPECT_EQ(cq_r.available(), 2u) << "both completions land on the shared CQ";
}

// --- CQ overrun backpressure --------------------------------------------------

TEST(CompletionQueue, FullTracksDepth) {
  CompletionQueue cq(2);
  EXPECT_FALSE(cq.full());
  EXPECT_TRUE(cq.push({}));
  EXPECT_TRUE(cq.push({}));
  EXPECT_TRUE(cq.full());
  EXPECT_TRUE(cq.poll().has_value());
  EXPECT_FALSE(cq.full());
}

TEST(QueuePair, CqOverrunBackpressuresWithoutConsumingRecv) {
  // A full receiver CQ must surface as recoverable backpressure: the posted
  // receive stays posted and the send succeeds after the receiver drains.
  Fabric fabric{FabricConfig{}};
  MemoryRegistry reg_a, reg_b;
  CompletionQueue cq_a{64}, cq_b{1};  // receiver CQ of depth 1
  SharedReceiveQueue srq_a, srq_b;
  const auto na = fabric.add_node();
  const auto nb = fabric.add_node();
  QueuePair qa(fabric, na, cq_a, reg_a, srq_a);
  QueuePair qb(fabric, nb, cq_b, reg_b, srq_b);
  qa.connect(qb);

  std::vector<std::byte> rx1(64), rx2(64);
  qb.post_recv(1, rx1);
  qb.post_recv(2, rx2);

  ASSERT_EQ(qa.post_send(pattern(16, 1), 0).status, QueuePair::SendStatus::kOk);
  const auto r = qa.post_send(pattern(16, 2), 0);
  EXPECT_EQ(r.status, QueuePair::SendStatus::kCqFull);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(qb.posted_recvs(), 1u) << "refused send must not consume a WQE";

  ASSERT_TRUE(cq_b.poll().has_value());  // receiver drains
  const auto r2 = qa.post_send(pattern(16, 2), 0);
  EXPECT_EQ(r2.status, QueuePair::SendStatus::kOk);
  EXPECT_TRUE(r2.delivered);
  EXPECT_EQ(r2.recv_wr_id, 2u);
}

// --- FaultInjector ------------------------------------------------------------

TEST(FaultInjector, FateStreamIsDeterministicPerSeed) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 1234;
  cfg.drop_probability = 0.2;
  cfg.duplicate_probability = 0.2;
  cfg.corrupt_probability = 0.2;
  cfg.reorder_probability = 0.2;
  FaultInjector x(cfg), y(cfg);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(x.next_fate(0, 1), y.next_fate(0, 1)) << "packet " << i;
  }
}

TEST(FaultInjector, LinksDrawIndependentStreams) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.drop_probability = 0.5;
  FaultInjector fi(cfg);
  int differ = 0;
  for (int i = 0; i < 64; ++i) {
    if (fi.next_fate(0, 1) != fi.next_fate(1, 0)) ++differ;
  }
  EXPECT_GT(differ, 0) << "opposite link directions share a stream";
}

TEST(FaultInjector, DropFirstPrefixIsExact) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.drop_first = 2;
  cfg.corrupt_first = 1;
  FaultInjector fi(cfg);
  EXPECT_EQ(fi.next_fate(0, 1), FaultInjector::Fate::kDrop);
  EXPECT_EQ(fi.next_fate(0, 1), FaultInjector::Fate::kDrop);
  EXPECT_EQ(fi.next_fate(0, 1), FaultInjector::Fate::kCorrupt);
  EXPECT_EQ(fi.next_fate(0, 1), FaultInjector::Fate::kDeliver)
      << "no probabilities configured: clean after the prefix";
  EXPECT_EQ(fi.stats().drops, 2u);
  EXPECT_EQ(fi.stats().corruptions, 1u);
}

TEST(FaultInjector, ForcedRnrWindowsFollowPeriodAndBurst) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.rnr_period = 4;
  cfg.rnr_burst = 2;
  FaultInjector fi(cfg);
  for (int cycle = 0; cycle < 3; ++cycle) {
    EXPECT_TRUE(fi.forced_rnr(0, 1));
    EXPECT_TRUE(fi.forced_rnr(0, 1));
    EXPECT_FALSE(fi.forced_rnr(0, 1));
    EXPECT_FALSE(fi.forced_rnr(0, 1));
  }
  EXPECT_EQ(fi.stats().forced_rnrs, 6u);
}

TEST(FaultInjector, FlapWindowsDropDeterministically) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.flap_period = 4;
  cfg.flap_down = 2;
  FaultInjector fi(cfg);
  for (int cycle = 0; cycle < 3; ++cycle) {
    EXPECT_EQ(fi.next_fate(0, 1), FaultInjector::Fate::kDrop)
        << "cycle " << cycle << " opens with a down-window";
    EXPECT_EQ(fi.next_fate(0, 1), FaultInjector::Fate::kDrop);
    EXPECT_EQ(fi.next_fate(0, 1), FaultInjector::Fate::kDeliver);
    EXPECT_EQ(fi.next_fate(0, 1), FaultInjector::Fate::kDeliver);
  }
  EXPECT_EQ(fi.stats().flap_drops, 6u);
  EXPECT_EQ(fi.stats().drops, 6u) << "flap drops count as drops too";
}

TEST(FaultInjector, ForcedQpErrorPeriodIsExactAndSeparate) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.qp_error_period = 3;
  FaultInjector fi(cfg);
  EXPECT_FALSE(fi.forced_qp_error(0, 1));
  EXPECT_FALSE(fi.forced_qp_error(0, 1));
  EXPECT_TRUE(fi.forced_qp_error(0, 1));
  EXPECT_FALSE(fi.forced_qp_error(0, 1));
  EXPECT_EQ(fi.stats().qp_errors, 1u);
  EXPECT_EQ(fi.next_fate(0, 1), FaultInjector::Fate::kDeliver)
      << "QP errors draw from their own counter, not the packet fate stream";
}

TEST(QueuePair, ErrorStateLifecycle) {
  FabricConfig cfg;
  cfg.fault.enabled = true;
  cfg.fault.qp_error_period = 2;  // second post errors the QP
  Fabric fabric{cfg};
  MemoryRegistry reg_a, reg_b;
  CompletionQueue cq_a{64}, cq_b{64};
  SharedReceiveQueue srq_a, srq_b;
  QueuePair qa(fabric, fabric.add_node(), cq_a, reg_a, srq_a);
  QueuePair qb(fabric, fabric.add_node(), cq_b, reg_b, srq_b);
  qa.connect(qb);

  std::vector<std::byte> rx1(64), rx2(64);
  qb.post_recv(1, rx1);
  qb.post_recv(2, rx2);
  EXPECT_EQ(qa.post_send(pattern(16), 0).status, QueuePair::SendStatus::kOk);
  EXPECT_EQ(qa.state(), QueuePair::State::kReady);

  // The second post trips the injector: the QP enters the error state and
  // the packet never reaches the fabric.
  EXPECT_EQ(qa.post_send(pattern(16), 0).status,
            QueuePair::SendStatus::kQpError);
  EXPECT_EQ(qa.state(), QueuePair::State::kError);
  // While errored, every post fails fast without consuming injector state.
  EXPECT_EQ(qa.post_send(pattern(16), 0).status,
            QueuePair::SendStatus::kQpError);
  EXPECT_EQ(fabric.injector()->stats().qp_errors, 1u);

  // reset() re-arms the QP; the next post (past the error period) delivers.
  qa.reset();
  EXPECT_EQ(qa.state(), QueuePair::State::kReady);
  const auto r = qa.post_send(pattern(16), 0);
  EXPECT_EQ(r.status, QueuePair::SendStatus::kOk);
  EXPECT_TRUE(r.delivered);

  // Explicit fail() (owner-driven, e.g. peer-death fencing) behaves the same.
  qa.fail();
  EXPECT_EQ(qa.state(), QueuePair::State::kError);
  qa.reset();
  EXPECT_EQ(qa.state(), QueuePair::State::kReady);
}

TEST(QueuePair, InjectedDropLosesPacketInFlight) {
  FabricConfig cfg;
  cfg.fault.enabled = true;
  cfg.fault.drop_first = 1;
  Fabric fabric{cfg};
  MemoryRegistry reg_a, reg_b;
  CompletionQueue cq_a{64}, cq_b{64};
  SharedReceiveQueue srq_a, srq_b;
  QueuePair qa(fabric, fabric.add_node(), cq_a, reg_a, srq_a);
  QueuePair qb(fabric, fabric.add_node(), cq_b, reg_b, srq_b);
  qa.connect(qb);

  std::vector<std::byte> rx(64);
  qb.post_recv(1, rx);
  const auto r = qa.post_send(pattern(16), 0);
  EXPECT_EQ(r.status, QueuePair::SendStatus::kOk)
      << "the sender NIC accepted it";
  EXPECT_FALSE(r.delivered) << "but the fabric ate it";
  EXPECT_FALSE(cq_b.poll().has_value());
  // Second packet (past the drop prefix) lands normally.
  const auto r2 = qa.post_send(pattern(16), 0);
  EXPECT_TRUE(r2.delivered);
  EXPECT_EQ(fabric.injector()->stats().drops, 1u);
}

}  // namespace
}  // namespace otm::rdma
