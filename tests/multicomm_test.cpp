// Tests for multiple-communicator support (Sec. IV-E): per-communicator
// index tables on the DPA under a memory budget, and the host software
// fallback for communicators the DPA cannot accommodate.
#include <gtest/gtest.h>

#include "dpa/accelerator.hpp"
#include "mpi/mpi.hpp"
#include "proto/endpoint.hpp"

namespace otm {
namespace {

MatchConfig small_cfg() {
  MatchConfig c;
  c.bins = 16;
  c.block_size = 4;
  c.max_receives = 64;
  c.max_unexpected = 64;
  return c;
}

// --- DpaAccelerator -------------------------------------------------------------

TEST(MultiComm, RegisterTracksMemory) {
  DpaAccelerator dpa(DpaConfig{}, small_cfg());
  const std::size_t base = dpa.memory_used();
  EXPECT_GT(base, 0u);
  ASSERT_TRUE(dpa.register_comm(1, small_cfg()));
  EXPECT_EQ(dpa.memory_used(), 2 * base);
  EXPECT_TRUE(dpa.comm_registered(1));
  EXPECT_FALSE(dpa.comm_registered(2));
}

TEST(MultiComm, DuplicateRegistrationRejected) {
  DpaAccelerator dpa(DpaConfig{}, small_cfg());
  EXPECT_FALSE(dpa.register_comm(0, small_cfg()));
}

TEST(MultiComm, BudgetExhaustionFailsRegistration) {
  DpaConfig cfg;
  cfg.memory_budget_bytes = 64 * 1024;
  MatchConfig big = small_cfg();
  big.max_receives = 512;  // ~33 KiB footprint each
  DpaAccelerator dpa(cfg, big);
  EXPECT_FALSE(dpa.register_comm(1, big))
      << "second communicator must exceed the 64 KiB budget";
  EXPECT_TRUE(dpa.register_comm(2, small_cfg()))
      << "a smaller configuration still fits";
}

TEST(MultiComm, PostRoutesToOwnCommunicator) {
  DpaAccelerator dpa(DpaConfig{}, small_cfg());
  ASSERT_TRUE(dpa.register_comm(1, small_cfg()));
  dpa.post_receive({1, 5, /*comm=*/0}, 0, 0, 100);
  dpa.post_receive({1, 5, /*comm=*/1}, 0, 0, 101);
  const auto out = dpa.deliver(std::vector<IncomingMessage>{
      IncomingMessage::make(1, 5, /*comm=*/1)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].match.receive_cookie, 101u);
  EXPECT_EQ(dpa.engine(0).stats().messages_processed, 0u);
  EXPECT_EQ(dpa.engine(1).stats().messages_processed, 1u);
}

TEST(MultiComm, UnregisteredPostSignalsFallback) {
  DpaAccelerator dpa(DpaConfig{}, small_cfg());
  const auto p = dpa.post_receive({1, 5, /*comm=*/9});
  EXPECT_EQ(p.kind, PostOutcome::Kind::kFallback);
}

TEST(MultiComm, MixedCommStreamPreservesPerCommOrder) {
  DpaAccelerator dpa(DpaConfig{}, small_cfg());
  ASSERT_TRUE(dpa.register_comm(1, small_cfg()));
  for (unsigned i = 0; i < 3; ++i) dpa.post_receive({1, 5, 0}, 0, 0, i);
  for (unsigned i = 0; i < 3; ++i) dpa.post_receive({1, 5, 1}, 0, 0, 10 + i);
  std::vector<IncomingMessage> msgs;
  for (unsigned i = 0; i < 3; ++i) {
    msgs.push_back(IncomingMessage::make(1, 5, 0));
    msgs.push_back(IncomingMessage::make(1, 5, 1));
  }
  const auto out = dpa.deliver(msgs);
  ASSERT_EQ(out.size(), 6u);
  unsigned next0 = 0;
  unsigned next1 = 10;
  for (const auto& o : out) {
    ASSERT_EQ(o.kind, ArrivalOutcome::Kind::kMatched);
    if (o.env.comm == 0) {
      EXPECT_EQ(o.match.receive_cookie, next0++) << "comm 0 order broken";
    } else {
      EXPECT_EQ(o.match.receive_cookie, next1++) << "comm 1 order broken";
    }
  }
  const MatchStats total = dpa.total_stats();
  EXPECT_EQ(total.messages_matched, 6u);
}

// --- Endpoint host path -----------------------------------------------------------

TEST(MultiComm, EndpointRoutesUnregisteredCommToHost) {
  rdma::Fabric fabric;
  proto::EndpointConfig ep_cfg;
  proto::Endpoint a(fabric, 0, ep_cfg, small_cfg(), DpaConfig{});
  proto::Endpoint b(fabric, 1, ep_cfg, small_cfg(), DpaConfig{});
  a.connect(b);

  std::vector<std::byte> data(32, std::byte{7});
  ASSERT_TRUE(a.send(1, 4, /*comm=*/5, data).ok);
  EXPECT_TRUE(b.progress().empty()) << "no DPA matching for comm 5";
  auto host = b.take_host_messages();
  ASSERT_EQ(host.size(), 1u);
  EXPECT_EQ(host[0].env.comm, 5u);
  EXPECT_EQ(host[0].env.tag, 4);
  ASSERT_EQ(host[0].payload.size(), 32u);
  EXPECT_EQ(host[0].payload[0], std::byte{7});
  EXPECT_TRUE(b.take_host_messages().empty()) << "inbox must drain";
}

TEST(MultiComm, EndpointHostPathRendezvous) {
  rdma::Fabric fabric;
  proto::EndpointConfig ep_cfg;
  ep_cfg.eager_threshold = 64;
  proto::Endpoint a(fabric, 0, ep_cfg, small_cfg(), DpaConfig{});
  proto::Endpoint b(fabric, 1, ep_cfg, small_cfg(), DpaConfig{});
  a.connect(b);

  std::vector<std::byte> data(4096, std::byte{9});
  ASSERT_TRUE(a.send(1, 4, /*comm=*/5, data).ok);
  b.progress();
  auto host = b.take_host_messages();
  ASSERT_EQ(host.size(), 1u);
  EXPECT_EQ(host[0].protocol, Protocol::kRendezvous);
  EXPECT_TRUE(host[0].payload.empty());
  std::vector<std::byte> user(4096);
  b.host_rdma_read(0, host[0].remote_key, host[0].remote_addr, user,
                   host[0].arrival_ns);
  EXPECT_EQ(user, data);
}

// --- Mini-MPI integration ------------------------------------------------------------

TEST(MultiComm, NonOffloadedCommWorksEndToEnd) {
  mpi::WorldOptions opts;
  mpi::World world(2, opts);
  mpi::CommInfo no_offload;
  no_offload.offload = false;
  const mpi::Comm comm = world.proc(0).comm_create(no_offload);
  EXPECT_FALSE(world.proc(1).comm_offloaded(comm));
  EXPECT_TRUE(world.proc(1).comm_offloaded(world.proc(1).world_comm()));

  std::vector<std::byte> tx(64, std::byte{3});
  std::vector<std::byte> rx(64);
  auto req = world.proc(1).irecv(rx, 0, 7, comm);
  world.proc(0).send(tx, 1, 7, comm);
  const mpi::Status st = world.proc(1).wait(req);
  EXPECT_EQ(st.bytes, 64u);
  EXPECT_EQ(rx, tx);
}

TEST(MultiComm, HostCommUnexpectedThenRecv) {
  mpi::World world(2, {});
  mpi::CommInfo no_offload;
  no_offload.offload = false;
  const mpi::Comm comm = world.proc(0).comm_create(no_offload);
  std::vector<std::byte> tx(16, std::byte{4});
  world.proc(0).send(tx, 1, 1, comm);
  world.proc(1).progress();  // host inbox -> host unexpected store
  std::vector<std::byte> rx(16);
  world.proc(1).recv(rx, 0, 1, comm);
  EXPECT_EQ(rx, tx);
}

TEST(MultiComm, HostCommPreservesOrdering) {
  mpi::World world(2, {});
  mpi::CommInfo no_offload;
  no_offload.offload = false;
  const mpi::Comm comm = world.proc(0).comm_create(no_offload);
  std::vector<std::byte> rx1(8);
  std::vector<std::byte> rx2(8);
  auto r1 = world.proc(1).irecv(rx1, 0, 4, comm);
  auto r2 = world.proc(1).irecv(rx2, 0, 4, comm);
  world.proc(0).send(std::vector<std::byte>(8, std::byte{1}), 1, 4, comm);
  world.proc(0).send(std::vector<std::byte>(8, std::byte{2}), 1, 4, comm);
  world.proc(1).wait(r1);
  world.proc(1).wait(r2);
  EXPECT_EQ(rx1[0], std::byte{1});
  EXPECT_EQ(rx2[0], std::byte{2});
}

TEST(MultiComm, OffloadedAndHostCommsInterleave) {
  mpi::World world(2, {});
  mpi::CommInfo no_offload;
  no_offload.offload = false;
  const mpi::Comm host_comm = world.proc(0).comm_create(no_offload);
  const mpi::Comm nic_comm = world.proc(0).world_comm();

  std::vector<std::byte> rx_host(8);
  std::vector<std::byte> rx_nic(8);
  auto rh = world.proc(1).irecv(rx_host, 0, 1, host_comm);
  auto rn = world.proc(1).irecv(rx_nic, 0, 1, nic_comm);
  world.proc(0).send(std::vector<std::byte>(8, std::byte{0xA}), 1, 1, host_comm);
  world.proc(0).send(std::vector<std::byte>(8, std::byte{0xB}), 1, 1, nic_comm);
  world.proc(1).wait(rh);
  world.proc(1).wait(rn);
  EXPECT_EQ(rx_host[0], std::byte{0xA});
  EXPECT_EQ(rx_nic[0], std::byte{0xB});
}

TEST(MultiComm, BudgetExhaustionFallsBackTransparently) {
  mpi::WorldOptions opts;
  opts.dpa.memory_budget_bytes = 80 * 1024;  // fits ~one comm only
  opts.match.max_receives = 512;
  opts.match.max_unexpected = 512;
  mpi::World world(2, opts);
  // World comm consumed most of the budget; this one must fall back.
  const mpi::Comm overflow = world.proc(0).comm_create({});
  EXPECT_FALSE(world.proc(1).comm_offloaded(overflow));

  std::vector<std::byte> tx(32, std::byte{6});
  std::vector<std::byte> rx(32);
  auto req = world.proc(1).irecv(rx, 0, 2, overflow);
  world.proc(0).send(tx, 1, 2, overflow);
  world.proc(1).wait(req);
  EXPECT_EQ(rx, tx);
}

TEST(MultiComm, HintsPropagateToEngineConfig) {
  mpi::World world(2, {});
  mpi::CommInfo hints;
  hints.assert_no_any_source = true;
  hints.assert_no_any_tag = true;
  const mpi::Comm comm = world.proc(0).comm_create(hints);
  ASSERT_TRUE(world.proc(1).comm_offloaded(comm));

  // The no-wildcard engine probes a single index per message.
  std::vector<std::byte> tx(8, std::byte{1});
  std::vector<std::byte> rx(8);
  auto req = world.proc(1).irecv(rx, 0, 3, comm);
  world.proc(0).send(tx, 1, 3, comm);
  world.proc(1).wait(req);
  EXPECT_EQ(rx, tx);
}

}  // namespace
}  // namespace otm
