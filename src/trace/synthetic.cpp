#include "trace/synthetic.hpp"

#include <array>
#include <vector>

#include "trace/trace_builder.hpp"
#include "util/rng.hpp"

namespace otm::trace {
namespace {

// --- Topology helpers ---------------------------------------------------------

/// Periodic 3D process grid.
struct Grid3 {
  int nx, ny, nz;

  int size() const noexcept { return nx * ny * nz; }

  Rank id(int x, int y, int z) const noexcept {
    const int wx = ((x % nx) + nx) % nx;
    const int wy = ((y % ny) + ny) % ny;
    const int wz = ((z % nz) + nz) % nz;
    return static_cast<Rank>((wz * ny + wy) * nx + wx);
  }

  std::array<int, 3> coords(Rank r) const noexcept {
    const int x = static_cast<int>(r) % nx;
    const int y = (static_cast<int>(r) / nx) % ny;
    const int z = static_cast<int>(r) / (nx * ny);
    return {x, y, z};
  }
};

/// The six face offsets.
constexpr std::array<std::array<int, 3>, 6> kFaces = {{{+1, 0, 0},
                                                       {-1, 0, 0},
                                                       {0, +1, 0},
                                                       {0, -1, 0},
                                                       {0, 0, +1},
                                                       {0, 0, -1}}};

/// All 26 neighbor offsets (faces + edges + corners).
std::vector<std::array<int, 3>> offsets26() {
  std::vector<std::array<int, 3>> out;
  for (int dz = -1; dz <= 1; ++dz)
    for (int dy = -1; dy <= 1; ++dy)
      for (int dx = -1; dx <= 1; ++dx)
        if (dx != 0 || dy != 0 || dz != 0) out.push_back({dx, dy, dz});
  return out;
}

std::size_t opposite26(std::size_t d);

/// One halo-exchange phase: every rank posts receives from all neighbors,
/// then sends to all, then waits — the receive-first discipline the paper
/// recommends (Sec. II-A) and the pattern the BoxLib/LULESH traces show.
void halo_exchange(TraceBuilder& b, const Grid3& g,
                   std::span<const std::array<int, 3>> offsets, Tag tag_base,
                   std::uint32_t bytes, bool tag_per_direction = true) {
  for (Rank r = 0; r < g.size(); ++r) {
    const auto c = g.coords(r);
    for (std::size_t d = 0; d < offsets.size(); ++d) {
      const Rank nbr = g.id(c[0] + offsets[d][0], c[1] + offsets[d][1],
                            c[2] + offsets[d][2]);
      if (nbr == r) continue;  // degenerate wrap at tiny grids
      const Tag tag = tag_per_direction ? tag_base + static_cast<Tag>(d) : tag_base;
      b.irecv(r, nbr, tag, bytes);
    }
  }
  for (Rank r = 0; r < g.size(); ++r) {
    const auto c = g.coords(r);
    for (std::size_t d = 0; d < offsets.size(); ++d) {
      const Rank nbr = g.id(c[0] + offsets[d][0], c[1] + offsets[d][1],
                            c[2] + offsets[d][2]);
      if (nbr == r) continue;
      // The *receiver* indexed this direction from its own perspective: the
      // opposite offset. Mirror the direction index so tags line up.
      const std::size_t mirror = d ^ 1u;  // offsets come in +/- pairs
      const Tag tag = tag_per_direction
                          ? tag_base + static_cast<Tag>(
                                           offsets.size() == kFaces.size()
                                               ? mirror
                                               : opposite26(d))
                          : tag_base;
      b.isend(r, nbr, tag, bytes);
    }
  }
  for (Rank r = 0; r < g.size(); ++r)
    b.waitall(r, static_cast<std::uint32_t>(offsets.size()));
  b.sync_clocks();
}

/// Index of the opposite offset inside offsets26() ordering.
std::size_t opposite26(std::size_t d) {
  const auto offs = offsets26();
  const auto& o = offs[d];
  for (std::size_t i = 0; i < offs.size(); ++i)
    if (offs[i][0] == -o[0] && offs[i][1] == -o[1] && offs[i][2] == -o[2])
      return i;
  return d;
}

}  // namespace

// --- Table II generators -------------------------------------------------------

Trace make_amg() {
  // Algebraic MultiGrid at 8 ranks (2x2x2): V-cycles of face halos over
  // shrinking levels plus an allreduce-based convergence check.
  const Grid3 g{2, 2, 2};
  TraceBuilder b("AMG", g.size());
  for (int iter = 0; iter < 25; ++iter) {
    halo_exchange(b, g, kFaces, /*tag_base=*/100, /*bytes=*/512);
    // Coarse level: everyone sends a residual block to rank 0, which posts
    // exact-source receives (the many-to-one pattern of Sec. I).
    for (Rank r = 1; r < g.size(); ++r) b.irecv(0, r, 7, 256);
    for (Rank r = 1; r < g.size(); ++r) b.isend(r, 0, 7, 256);
    b.waitall(0, static_cast<std::uint32_t>(g.size() - 1));
    b.collective_all(OpType::kBcast, 256);
    b.collective_all(OpType::kAllreduce, 8);
  }
  return b.finish();
}

Trace make_amr_miniapp() {
  // Single-step AMR hydrodynamics at 64 ranks: 6-face halos, periodic
  // regridding with ANY_SOURCE box migration and an allgather of the new
  // box layout.
  const Grid3 g{4, 4, 4};
  TraceBuilder b("AMR-MiniApp", g.size());
  Xoshiro256 rng(2024);
  for (int step = 0; step < 12; ++step) {
    halo_exchange(b, g, kFaces, 300, 1024);
    if (step % 3 == 2) {
      // Load balancing: a few overloaded ranks ship boxes to random peers;
      // receivers cannot know the source ahead of time.
      for (int m = 0; m < 16; ++m) {
        const Rank to = static_cast<Rank>(rng.below(static_cast<std::uint64_t>(g.size())));
        const Rank from =
            static_cast<Rank>(rng.below(static_cast<std::uint64_t>(g.size())));
        if (to == from) continue;
        b.irecv(to, kAnySource, 900, 4096);
        b.isend(from, to, 900, 4096);
        b.wait(to, 0);
      }
      b.collective_all(OpType::kAllgather, 64);
    }
    b.collective_all(OpType::kAllreduce, 8);
  }
  return b.finish();
}

Trace make_bigfft() {
  // Distributed FFT at 1024 ranks (32x32 pencil decomposition): the
  // transpose exchanges within rows then within columns. Pure p2p.
  constexpr int kSide = 32;
  constexpr int kRanks = kSide * kSide;
  TraceBuilder b("BigFFT", kRanks);
  for (int fft = 0; fft < 2; ++fft) {
    for (int phase = 0; phase < 2; ++phase) {
      const Tag tag = static_cast<Tag>(200 + fft * 2 + phase);
      for (Rank r = 0; r < kRanks; ++r) {
        const int row = static_cast<int>(r) / kSide;
        const int col = static_cast<int>(r) % kSide;
        for (int p = 0; p < kSide; ++p) {
          const Rank peer = phase == 0
                                ? static_cast<Rank>(row * kSide + p)  // row group
                                : static_cast<Rank>(p * kSide + col); // col group
          if (peer == r) continue;
          b.irecv(r, peer, tag, 8192);
        }
      }
      for (Rank r = 0; r < kRanks; ++r) {
        const int row = static_cast<int>(r) / kSide;
        const int col = static_cast<int>(r) % kSide;
        for (int p = 0; p < kSide; ++p) {
          const Rank peer = phase == 0 ? static_cast<Rank>(row * kSide + p)
                                       : static_cast<Rank>(p * kSide + col);
          if (peer == r) continue;
          b.isend(r, peer, tag, 8192);
        }
      }
      for (Rank r = 0; r < kRanks; ++r) b.waitall(r, kSide - 1);
      b.sync_clocks();
    }
  }
  return b.finish();
}

Trace make_boxlib_cns() {
  // Compressible Navier-Stokes at 64 ranks: FillBoundary over all 26
  // neighbors for several components per step. This is the deep-queue
  // outlier of Fig. 7 (max depth ~25 with one bin).
  const Grid3 g{4, 4, 4};
  const auto offs = offsets26();
  TraceBuilder b("BoxLib-CNS", g.size());
  for (int step = 0; step < 10; ++step) {
    for (Tag component = 0; component < 3; ++component)
      halo_exchange(b, g, offs, 400 + component * 32, 2048,
                    /*tag_per_direction=*/false);
    b.collective_all(OpType::kAllreduce, 8);  // dt estimation
  }
  return b.finish();
}

Trace make_boxlib_multigrid() {
  // Single-step BoxLib linear solver at 64 ranks: V-cycle with halving
  // participation per level.
  const Grid3 g{4, 4, 4};
  TraceBuilder b("BoxLib-MultiGrid", g.size());
  for (int cycle = 0; cycle < 8; ++cycle) {
    for (int level = 0; level < 3; ++level) {
      const int stride = 1 << level;
      for (Rank r = 0; r < g.size(); ++r) {
        const auto c = g.coords(r);
        if (c[0] % stride != 0 || c[1] % stride != 0 || c[2] % stride != 0)
          continue;
        for (const auto& o : kFaces) {
          const Rank nbr = g.id(c[0] + o[0] * stride, c[1] + o[1] * stride,
                                c[2] + o[2] * stride);
          if (nbr == r) continue;
          b.irecv(r, nbr, static_cast<Tag>(500 + level), 512);
        }
      }
      for (Rank r = 0; r < g.size(); ++r) {
        const auto c = g.coords(r);
        if (c[0] % stride != 0 || c[1] % stride != 0 || c[2] % stride != 0)
          continue;
        for (const auto& o : kFaces) {
          const Rank nbr = g.id(c[0] + o[0] * stride, c[1] + o[1] * stride,
                                c[2] + o[2] * stride);
          if (nbr == r) continue;
          b.isend(r, nbr, static_cast<Tag>(500 + level), 512);
        }
        b.waitall(r, 6);
      }
      b.sync_clocks();
    }
    b.collective_all(OpType::kAllreduce, 8);
  }
  return b.finish();
}

Trace make_crystal_router() {
  // Nek5000 crystal-router proxy at 100 ranks: log2(P) staged hypercube
  // exchange; receivers use ANY_SOURCE because routed payloads aggregate
  // messages from unknown origins. Pure p2p.
  constexpr int kRanks = 100;
  TraceBuilder b("CrystalRouter", kRanks);
  Xoshiro256 rng(7);
  for (int round = 0; round < 6; ++round) {
    for (int stage = 0; (1 << stage) < kRanks; ++stage) {
      const int bit = 1 << stage;
      const Tag tag = static_cast<Tag>(600 + stage);
      for (Rank r = 0; r < kRanks; ++r) {
        const int partner = static_cast<int>(r) ^ bit;
        if (partner >= kRanks) continue;
        // 1-3 routed bundles per stage: same-source/tag bursts exercise
        // the compatible-receive sequences of the fast path.
        const int bundles = 1 + static_cast<int>(rng.below(3));
        for (int m = 0; m < bundles; ++m) b.irecv(r, kAnySource, tag, 1500);
        for (int m = 0; m < bundles; ++m)
          b.isend(r, static_cast<Rank>(partner), tag, 1500);
        b.waitall(r, static_cast<std::uint32_t>(bundles));
      }
      b.sync_clocks();
    }
  }
  return b.finish();
}

Trace make_fill_boundary() {
  // Ghost-cell exchange proxy at 1000 ranks (10x10x10), 26 neighbors,
  // direction-tagged. Pure p2p.
  const Grid3 g{10, 10, 10};
  const auto offs = offsets26();
  TraceBuilder b("FillBoundary", g.size());
  for (int iter = 0; iter < 6; ++iter)
    halo_exchange(b, g, offs, 700, 4096, /*tag_per_direction=*/false);
  return b.finish();
}

Trace make_hilo() {
  // Neutron transport evaluation suite at 256 ranks: collective-only
  // (Fig. 6 shows HILO entirely reliant on collectives).
  TraceBuilder b("HILO", 256);
  for (int iter = 0; iter < 60; ++iter) {
    b.collective_all(OpType::kAllreduce, 64);
    if (iter % 10 == 0) b.collective_all(OpType::kBcast, 1024);
  }
  b.collective_all(OpType::kReduce, 64);
  return b.finish();
}

Trace make_hilo_2d() {
  // 2D multinode HILO variant: also purely collective.
  TraceBuilder b("HILO-2D", 256);
  for (int iter = 0; iter < 40; ++iter) {
    b.collective_all(OpType::kAllreduce, 128);
    b.collective_all(OpType::kReduce, 64);
    if (iter % 8 == 0) b.collective_all(OpType::kAllgather, 256);
  }
  return b.finish();
}

Trace make_lulesh() {
  // Hydrodynamics proxy at 64 ranks: 26-neighbor stencil with distinct
  // face/edge/corner message sizes, receive-first, dt allreduce per step.
  const Grid3 g{4, 4, 4};
  const auto offs = offsets26();
  TraceBuilder b("LULESH", g.size());
  auto size_of = [](const std::array<int, 3>& o) -> std::uint32_t {
    const int dims = (o[0] != 0) + (o[1] != 0) + (o[2] != 0);
    return dims == 1 ? 8192 : dims == 2 ? 1024 : 128;  // face/edge/corner
  };
  for (int step = 0; step < 15; ++step) {
    for (Rank r = 0; r < g.size(); ++r) {
      const auto c = g.coords(r);
      for (std::size_t d = 0; d < offs.size(); ++d) {
        const Rank nbr = g.id(c[0] + offs[d][0], c[1] + offs[d][1],
                              c[2] + offs[d][2]);
        if (nbr == r) continue;
        b.irecv(r, nbr, 800, size_of(offs[d]));
      }
    }
    for (Rank r = 0; r < g.size(); ++r) {
      const auto c = g.coords(r);
      for (std::size_t d = 0; d < offs.size(); ++d) {
        const Rank nbr = g.id(c[0] + offs[d][0], c[1] + offs[d][1],
                              c[2] + offs[d][2]);
        if (nbr == r) continue;
        b.isend(r, nbr, 800, size_of(offs[d]));
      }
      b.waitall(r, 26);
    }
    b.sync_clocks();
    b.collective_all(OpType::kAllreduce, 8);   // dt
    b.collective_all(OpType::kAllreduce, 8);   // hydro constraint
  }
  return b.finish();
}

Trace make_minife() {
  // Finite-element CG proxy at 1152 ranks (8x12x12): 6-face halo per
  // matvec plus two dot-product allreduces per iteration.
  const Grid3 g{8, 12, 12};
  TraceBuilder b("MiniFE", g.size());
  for (int iter = 0; iter < 18; ++iter) {
    halo_exchange(b, g, kFaces, 1000, 2048);
    b.collective_all(OpType::kAllreduce, 8);
    b.collective_all(OpType::kAllreduce, 8);
  }
  b.collective_all(OpType::kAllreduce, 8);
  return b.finish();
}

Trace make_mocfe() {
  // Method-of-characteristics reactor proxy at 64 ranks: pipelined angular
  // sweeps (blocking upstream recv, downstream send) plus a reduce per
  // outer iteration.
  constexpr int kSide = 8;
  TraceBuilder b("MOCFE", kSide * kSide);
  const std::array<std::array<int, 2>, 4> dirs = {{{+1, +1}, {-1, +1}, {+1, -1},
                                                   {-1, -1}}};
  for (int iter = 0; iter < 6; ++iter) {
    for (std::size_t a = 0; a < dirs.size(); ++a) {
      const int sx = dirs[a][0];
      const int sy = dirs[a][1];
      const Tag tag = static_cast<Tag>(1100 + a);
      for (Rank r = 0; r < kSide * kSide; ++r) {
        const int x = static_cast<int>(r) % kSide;
        const int y = static_cast<int>(r) / kSide;
        const int upx = x - sx;
        const int upy = y - sy;
        if (upx >= 0 && upx < kSide)
          b.recv(r, static_cast<Rank>(y * kSide + upx), tag, 1024);
        if (upy >= 0 && upy < kSide)
          b.recv(r, static_cast<Rank>(upy * kSide + x), tag, 1024);
        const int dnx = x + sx;
        const int dny = y + sy;
        if (dnx >= 0 && dnx < kSide)
          b.send(r, static_cast<Rank>(y * kSide + dnx), tag, 1024);
        if (dny >= 0 && dny < kSide)
          b.send(r, static_cast<Rank>(dny * kSide + x), tag, 1024);
      }
      b.sync_clocks();
    }
    b.collective_all(OpType::kReduce, 64);
  }
  return b.finish();
}

Trace make_multigrid() {
  // BoxLib-based multigrid at 1000 ranks: V-cycles over 10^3 with level
  // coarsening (stride doubling), residual allreduce per cycle.
  const Grid3 g{10, 10, 10};
  TraceBuilder b("MultiGrid", g.size());
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int level = 0; level < 3; ++level) {
      const int stride = 1 << level;
      for (Rank r = 0; r < g.size(); ++r) {
        const auto c = g.coords(r);
        if (c[0] % stride != 0 || c[1] % stride != 0 || c[2] % stride != 0)
          continue;
        for (const auto& o : kFaces) {
          const Rank nbr = g.id(c[0] + o[0] * stride, c[1] + o[1] * stride,
                                c[2] + o[2] * stride);
          if (nbr == r) continue;
          b.irecv(r, nbr, static_cast<Tag>(1200 + level), 1024);
        }
      }
      for (Rank r = 0; r < g.size(); ++r) {
        const auto c = g.coords(r);
        if (c[0] % stride != 0 || c[1] % stride != 0 || c[2] % stride != 0)
          continue;
        for (const auto& o : kFaces) {
          const Rank nbr = g.id(c[0] + o[0] * stride, c[1] + o[1] * stride,
                                c[2] + o[2] * stride);
          if (nbr == r) continue;
          b.isend(r, nbr, static_cast<Tag>(1200 + level), 1024);
        }
        b.waitall(r, 6);
      }
      b.sync_clocks();
    }
    b.collective_all(OpType::kAllreduce, 8);
  }
  return b.finish();
}

Trace make_nekbone() {
  // Nek5000 Poisson-solver proxy at 64 ranks: CG iterations with
  // gather-scatter face exchange and three allreduces per iteration.
  const Grid3 g{4, 4, 4};
  TraceBuilder b("Nekbone", g.size());
  for (int iter = 0; iter < 20; ++iter) {
    halo_exchange(b, g, kFaces, 1300, 4096);
    b.collective_all(OpType::kAllreduce, 8);
    b.collective_all(OpType::kAllreduce, 8);
    b.collective_all(OpType::kAllreduce, 8);
  }
  return b.finish();
}

namespace {

/// KBA wavefront sweep shared by PARTISN and SNAP (same communication
/// pattern per Table II).
Trace make_kba(const char* name, int px, int py, int iterations, int kplanes,
               Tag tag_base, std::uint32_t bytes) {
  TraceBuilder b(name, px * py);
  const std::array<std::array<int, 2>, 4> octants = {{{+1, +1}, {-1, +1},
                                                      {+1, -1}, {-1, -1}}};
  for (int iter = 0; iter < iterations; ++iter) {
    for (std::size_t o = 0; o < octants.size(); ++o) {
      const int sx = octants[o][0];
      const int sy = octants[o][1];
      const Tag tag = tag_base + static_cast<Tag>(o);
      for (int k = 0; k < kplanes; ++k) {
        for (Rank r = 0; r < px * py; ++r) {
          const int x = static_cast<int>(r) % px;
          const int y = static_cast<int>(r) / px;
          const int upx = x - sx;
          const int upy = y - sy;
          if (upx >= 0 && upx < px)
            b.recv(r, static_cast<Rank>(y * px + upx), tag, bytes);
          if (upy >= 0 && upy < py)
            b.recv(r, static_cast<Rank>(upy * px + x), tag, bytes);
          const int dnx = x + sx;
          const int dny = y + sy;
          if (dnx >= 0 && dnx < px)
            b.send(r, static_cast<Rank>(y * px + dnx), tag, bytes);
          if (dny >= 0 && dny < py)
            b.send(r, static_cast<Rank>(dny * px + x), tag, bytes);
        }
      }
      b.sync_clocks();
    }
    b.collective_all(OpType::kAllreduce, 8);
  }
  return b.finish();
}

}  // namespace

Trace make_partisn() {
  // Discrete-ordinates transport at 168 ranks (12x14 KBA decomposition).
  return make_kba("PARTISN", 12, 14, /*iterations=*/4, /*kplanes=*/4,
                  /*tag_base=*/1400, /*bytes=*/2048);
}

Trace make_snap() {
  // PARTISN communication-pattern proxy; same sweep, more planes, smaller
  // payloads.
  return make_kba("SNAP", 12, 14, /*iterations=*/5, /*kplanes=*/6,
                  /*tag_base=*/1500, /*bytes=*/1024);
}

// --- Registry -------------------------------------------------------------------

std::span<const AppInfo> application_suite() {
  static const AppInfo kSuite[] = {
      {"AMG", "Algebraic MultiGrid. Linear equation solver", 8, &make_amg},
      {"AMR-MiniApp", "Single step AMR for hydrodynamics", 64, &make_amr_miniapp},
      {"BigFFT", "Distributed Fast Fourier Transform", 1024, &make_bigfft},
      {"BoxLib-CNS", "Compressible Navier Stokes equations integrator", 64,
       &make_boxlib_cns},
      {"BoxLib-MultiGrid", "Single step BoxLib linear solver", 64,
       &make_boxlib_multigrid},
      {"CrystalRouter",
       "Proxy application for the Nek5000 scalable communication pattern", 100,
       &make_crystal_router},
      {"FillBoundary", "Proxy application for ghost cell exchange using MultiFabs",
       1000, &make_fill_boundary},
      {"HILO", "Modeling of Neutron Transport Evaluation and Test Suite", 256,
       &make_hilo},
      {"HILO-2D",
       "Modeling of Neutron Transport Evaluation and Test Suite in 2D multinode",
       256, &make_hilo_2d},
      {"LULESH", "Proxy application for hydrodynamic codes", 64, &make_lulesh},
      {"MiniFE", "Proxy application for finite elements codes", 1152,
       &make_minife},
      {"MOCFE",
       "Proxy application for Method of Characteristics (MOC) reactor simulator",
       64, &make_mocfe},
      {"MultiGrid", "MultiGrid solver based on BoxLib", 1000, &make_multigrid},
      {"Nekbone", "Proxy application for the Nek5000 poison equation solver", 64,
       &make_nekbone},
      {"PARTISN", "Discrete-ordinates neutral-particle transport equation solver",
       168, &make_partisn},
      {"SNAP", "Proxy application for the PARTISN communication pattern", 168,
       &make_snap},
  };
  return kSuite;
}

const AppInfo* find_app(const std::string& name) {
  for (const AppInfo& a : application_suite())
    if (name == a.name) return &a;
  return nullptr;
}

}  // namespace otm::trace
