#include "core/sharded_engine.hpp"

#include <algorithm>
#include <thread>

#include "util/assert.hpp"

namespace otm {

// --- ClaimTable --------------------------------------------------------------

ClaimTable::ClaimTable(std::size_t capacity)
    : words_(capacity), records_(capacity) {
  free_list_.reserve(capacity);
  for (std::size_t i = capacity; i > 0; --i) {
    free_list_.push_back(static_cast<std::uint32_t>(i - 1));
    // relaxed: construction precedes any sharing.
    words_[i - 1].store(kUnclaimed, std::memory_order_relaxed);
  }
  for (Record& r : records_) r.replica_slot.fill(kInvalidSlot);
}

std::uint32_t ClaimTable::allocate(std::uint64_t cookie, std::uint64_t label) {
  if (free_list_.empty()) return kInvalidSlot;
  const std::uint32_t idx = free_list_.back();
  free_list_.pop_back();
  Record& r = records_[idx];
  r.replica_slot.fill(kInvalidSlot);
  r.cookie = cookie;
  r.label = label;
  r.live = true;
  ++live_;
  OTM_ASSERT(claim_word(idx) == kUnclaimed);
  return idx;
}

void ClaimTable::release(std::uint32_t idx) {
  Record& r = records_[idx];
  OTM_ASSERT_MSG(r.live, "release of a dead claim");
  r.live = false;
  r.replica_slot.fill(kInvalidSlot);
  reset_claim(idx);
  free_list_.push_back(idx);
  --live_;
}

// otmlint: hot
void ClaimTable::try_claim(std::uint32_t idx, std::uint64_t seq) noexcept {
  std::atomic<std::uint64_t>& word = words_[idx];
  // relaxed seed: the CAS below re-reads on failure.
  std::uint64_t cur = word.load(std::memory_order_relaxed);
  bool saw_other = false;
  for (;;) {
    if (cur != kUnclaimed) {
      saw_other = true;
      if (cur <= seq) break;  // an older registration already holds the word
    }
    // release on success: publishes this shard's matching state to the
    // arbitration pass's acquire load of claim_word(). relaxed on failure:
    // the loop re-examines the freshly observed value.
    if (word.compare_exchange_weak(cur, seq, std::memory_order_release,
                                   std::memory_order_relaxed))
      break;
  }
  if (saw_other) {
    // release: pairs with the acquire load in contested() — the arbiter
    // observing the flag also observes both registrations.
    contested_.store(true, std::memory_order_release);
  }
}

std::optional<std::uint32_t> ClaimTable::find_by_cookie(
    std::uint64_t cookie) const {
  std::optional<std::uint32_t> best;
  for (std::uint32_t i = 0; i < records_.size(); ++i) {
    const Record& r = records_[i];
    if (!r.live || r.cookie != cookie) continue;
    if (!best || r.label < records_[*best].label) best = i;
  }
  return best;
}

// --- ShardedEngine -----------------------------------------------------------

namespace {

MatchConfig shard_config(const MatchConfig& cfg) {
  MatchConfig c = cfg;
  c.shards = 1;  // each shard is a plain single engine
  return c;
}

}  // namespace

ShardedEngine::ShardedEngine(const MatchConfig& cfg, const CostTable* costs)
    : cfg_(cfg),
      shard_mask_(static_cast<std::uint32_t>(cfg.shards - 1)),
      claims_(cfg.max_receives) {
  OTM_ASSERT_MSG(cfg.valid(), "invalid MatchConfig");
  shards_.reserve(cfg.shards);
  for (std::size_t k = 0; k < cfg.shards; ++k)
    shards_.push_back(std::make_unique<MatchEngine>(shard_config(cfg), costs));
  scratch_.resize(cfg.shards);
}

void ShardedEngine::attach_observability(obs::Observability* obs,
                                         std::string_view prefix) {
  if (shard_count() == 1) {
    shards_[0]->attach_observability(obs, prefix);
    return;
  }
  SerialSection ingress(ingress_);
  obs_ = obs;
  mh_replicated_posts_ = nullptr;
  mh_claims_won_ = nullptr;
  mh_claims_contested_ = nullptr;
  mh_block_repairs_ = nullptr;
  const std::string base(prefix);
  for (unsigned k = 0; k < shard_count(); ++k)
    shards_[k]->attach_observability(obs,
                                     base + ".shard" + std::to_string(k));
  if (obs == nullptr) return;
  if (obs::MetricsRegistry* reg = obs->metrics()) {
    mh_replicated_posts_ =
        &reg->counter(base + ".sharded.replicated_posts");
    mh_claims_won_ = &reg->counter(base + ".sharded.claims_won");
    mh_claims_contested_ = &reg->counter(base + ".sharded.claims_contested");
    mh_block_repairs_ = &reg->counter(base + ".sharded.block_repairs");
    publish_sharded_metrics();
  }
}

void ShardedEngine::publish_sharded_metrics() noexcept {
  if (mh_replicated_posts_ == nullptr) return;
  mh_replicated_posts_->set(sstats_.replicated_posts);
  mh_claims_won_->set(sstats_.claims_won);
  mh_claims_contested_->set(sstats_.claims_contested);
  mh_block_repairs_->set(sstats_.block_repairs);
}

PostOutcome ShardedEngine::post_receive(const MatchSpec& spec,
                                        std::uint64_t buffer_addr,
                                        std::uint32_t buffer_capacity,
                                        std::uint64_t cookie) {
  if (shard_count() == 1)
    return shards_[0]->post_receive(spec, buffer_addr, buffer_capacity, cookie);
  SerialSection ingress(ingress_);
  const WildcardClass wc = spec.wildcard_class();
  const bool replicated =
      wc == WildcardClass::kSourceWild || wc == WildcardClass::kBothWild;

  // Fig. 1a step 1, across shards: the oldest stored unexpected message.
  // Global arrival stamps make the cross-shard age compare exact (C2).
  if (replicated) {
    unsigned best_shard = 0;
    std::optional<MatchEngine::UnexpectedPeek> best;
    for (unsigned k = 0; k < shard_count(); ++k) {
      const auto p = shards_[k]->peek_unexpected(spec);
      if (p && (!best || p->arrival < best->arrival)) {
        best = p;
        best_shard = k;
      }
    }
    if (best) return shards_[best_shard]->take_unexpected(best->slot, cookie);
  } else {
    const unsigned home = shard_of(spec.source);
    if (const auto p = shards_[home]->peek_unexpected(spec))
      return shards_[home]->take_unexpected(p->slot, cookie);
  }

  const std::uint64_t label = labels_.allocate();
  if (!replicated) {
    return shards_[shard_of(spec.source)]->post_pending(
        spec, buffer_addr, buffer_capacity, cookie, label, kInvalidSlot);
  }

  // Wildcard-source: replicate into every shard under one label + claim.
  const std::uint32_t claim_idx = claims_.allocate(cookie, label);
  if (claim_idx == kInvalidSlot) {
    PostOutcome out;
    out.kind = PostOutcome::Kind::kFallback;
    out.cookie = cookie;
    return out;
  }
  ClaimTable::Record& rec = claims_.record(claim_idx);
  for (unsigned k = 0; k < shard_count(); ++k) {
    const PostOutcome r = shards_[k]->post_pending(
        spec, buffer_addr, buffer_capacity, cookie, label, claim_idx);
    if (r.kind == PostOutcome::Kind::kFallback) {
      // One shard's table is full: unwind the replicas already indexed so
      // the caller sees an atomic fallback, not a half-replicated receive.
      for (unsigned k2 = 0; k2 < k; ++k2) {
        const auto cancelled = shards_[k2]->cancel_receive(cookie);
        OTM_ASSERT_MSG(cancelled.has_value(), "replica unwind failed");
      }
      claims_.release(claim_idx);
      return r;
    }
    rec.replica_slot[k] = r.slot;
  }
  ++sstats_.replicated_posts;
  publish_sharded_metrics();
  PostOutcome out;
  out.kind = PostOutcome::Kind::kPending;
  out.cookie = cookie;
  return out;
}

std::uint64_t ShardedEngine::labels_allocated() const noexcept {
  if (shard_count() == 1) {
    // Single-shard posts go straight through the shard's ReceiveStore, so
    // its engine-serialized label counter is the watermark.
    const ReceiveStore& store = shards_[0]->receives();
    SerialSection serial(store.serial());
    return store.next_label();
  }
  return labels_.peek();
}

std::optional<ProbeResult> ShardedEngine::probe(const MatchSpec& spec) {
  if (shard_count() == 1) return shards_[0]->probe(spec);
  SerialSection ingress(ingress_);
  const WildcardClass wc = spec.wildcard_class();
  if (wc == WildcardClass::kNone || wc == WildcardClass::kTagWild)
    return shards_[shard_of(spec.source)]->probe(spec);
  unsigned best_shard = 0;
  std::optional<MatchEngine::UnexpectedPeek> best;
  for (unsigned k = 0; k < shard_count(); ++k) {
    const auto p = shards_[k]->peek_unexpected(spec);
    if (p && (!best || p->arrival < best->arrival)) {
      best = p;
      best_shard = k;
    }
  }
  if (!best) return std::nullopt;
  const UnexpectedDescriptor& d = shards_[best_shard]->unexpected().desc(best->slot);
  return ProbeResult{d.env.source, d.env.tag,  d.payload_bytes,
                     d.env.comm,   d.protocol, d.wire_seq};
}

std::optional<std::uint64_t> ShardedEngine::cancel_receive(
    std::uint64_t cookie) {
  if (shard_count() == 1) return shards_[0]->cancel_receive(cookie);
  SerialSection ingress(ingress_);
  if (const auto claim_idx = claims_.find_by_cookie(cookie)) {
    std::optional<std::uint64_t> buffer;
    for (unsigned k = 0; k < shard_count(); ++k) {
      const auto r = shards_[k]->cancel_receive(cookie);
      OTM_ASSERT_MSG(r.has_value(), "replicated cancel missed a shard");
      buffer = r;
    }
    claims_.release(*claim_idx);
    return buffer;
  }
  for (unsigned k = 0; k < shard_count(); ++k) {
    if (const auto r = shards_[k]->cancel_receive(cookie)) return r;
  }
  return std::nullopt;
}

std::size_t ShardedEngine::drain_pending(
    std::vector<MatchEngine::DrainedReceive>& out) {
  if (shard_count() == 1) return shards_[0]->drain_pending(out);
  const auto first = static_cast<std::ptrdiff_t>(out.size());
  for (unsigned k = 0; k < shard_count(); ++k)
    shards_[k]->collect_pending(out);
  // Wildcard-source replicas show up once per shard under one shared
  // (label, cookie); keep one logical entry each.
  std::sort(out.begin() + first, out.end(),
            [](const MatchEngine::DrainedReceive& a,
               const MatchEngine::DrainedReceive& b) {
              return a.label != b.label ? a.label < b.label
                                        : a.cookie < b.cookie;
            });
  out.erase(std::unique(out.begin() + first, out.end(),
                        [](const MatchEngine::DrainedReceive& a,
                           const MatchEngine::DrainedReceive& b) {
                          return a.label == b.label && a.cookie == b.cookie;
                        }),
            out.end());
  for (std::size_t i = static_cast<std::size_t>(first); i < out.size(); ++i)
    cancel_receive(out[i].cookie);
  return out.size() - static_cast<std::size_t>(first);
}

std::size_t ShardedEngine::drain_shard(
    unsigned k, std::vector<MatchEngine::DrainedReceive>& receives,
    std::vector<UnexpectedDescriptor>& ums) {
  OTM_ASSERT(k < shard_count());
  if (shard_count() == 1) {
    const std::size_t n = shards_[0]->drain_pending(receives);
    shards_[0]->drain_unexpected(ums);
    return n;
  }
  const auto first = static_cast<std::ptrdiff_t>(receives.size());
  shards_[k]->collect_pending(receives);
  // collect_pending is non-destructive; withdraw each through the regular
  // cancel path so wildcard replicas vanish from *every* shard, their claim
  // words release, and the depth arithmetic stays exact.
  for (std::size_t i = static_cast<std::size_t>(first); i < receives.size();
       ++i)
    cancel_receive(receives[i].cookie);
  shards_[k]->drain_unexpected(ums);
  return receives.size() - static_cast<std::size_t>(first);
}

std::size_t ShardedEngine::drain_unexpected(
    std::vector<UnexpectedDescriptor>& out) {
  if (shard_count() == 1) return shards_[0]->drain_unexpected(out);
  const auto first = static_cast<std::ptrdiff_t>(out.size());
  for (unsigned k = 0; k < shard_count(); ++k)
    shards_[k]->drain_unexpected(out);
  // Per-shard drains are arrival-ordered already; the merge re-sorts by the
  // global arrival stamps the sharded driver assigned (C2 across shards).
  std::sort(out.begin() + first, out.end(),
            [](const UnexpectedDescriptor& a, const UnexpectedDescriptor& b) {
              return a.arrival < b.arrival;
            });
  return out.size() - static_cast<std::size_t>(first);
}

// Runs on a shard worker thread while the driver waits at the join barrier;
// the scratch slot it touches is thread-private by construction (one worker
// per shard), a phase discipline the lock-based analysis cannot express.
void ShardedEngine::register_claims(unsigned s) noexcept
    OTM_NO_THREAD_SAFETY_ANALYSIS {
  ShardScratch& sc = scratch_[s];
  BlockMatcher& m = *sc.armed;
  for (unsigned t = 0; t < m.num_threads(); ++t) {
    const BlockMatcher::ThreadResult& r = m.result(t);
    if (r.final_slot == kInvalidSlot) continue;
    const std::uint32_t claim_idx =
        shards_[s]->receives().desc(r.final_slot).claim_idx;
    if (claim_idx == kInvalidSlot) continue;
    claims_.try_claim(claim_idx, sc.stamps[t]);
    sc.regs.push_back({claim_idx, t});
  }
}

void ShardedEngine::win_claim(std::uint32_t claim_idx, unsigned winner_shard) {
  const ClaimTable::Record& rec = claims_.record(claim_idx);
  for (unsigned k = 0; k < shard_count(); ++k) {
    if (k == winner_shard || rec.replica_slot[k] == kInvalidSlot) continue;
    shards_[k]->retire_replica(rec.replica_slot[k]);
  }
  claims_.release(claim_idx);
  ++sstats_.claims_won;
}

void ShardedEngine::process_block(std::span<const IncomingMessage> block,
                                  std::span<const std::uint64_t> starts,
                                  BlockExecutor& executor,
                                  std::span<ArrivalOutcome> out) {
  // Order-preserving partition by source shard; every message gets a
  // global arrival stamp (C2 across per-shard UMQ stores + claim seq).
  for (ShardScratch& sc : scratch_) {
    sc.msgs.clear();
    sc.starts.clear();
    sc.stamps.clear();
    sc.global_pos.clear();
    sc.regs.clear();
    sc.out.clear();
    sc.armed = nullptr;
  }
  for (std::size_t i = 0; i < block.size(); ++i) {
    ShardScratch& sc = scratch_[shard_of(block[i].env.source)];
    sc.msgs.push_back(block[i]);
    if (!starts.empty()) sc.starts.push_back(starts[i]);
    sc.stamps.push_back(global_arrival_++);
    sc.global_pos.push_back(static_cast<std::uint32_t>(i));
  }

  for (unsigned s = 0; s < shard_count(); ++s) {
    ShardScratch& sc = scratch_[s];
    if (sc.msgs.empty()) continue;
    sc.armed = &shards_[s]->arm_block(sc.msgs, sc.starts);
  }

  // Matching phase: each armed shard runs independently; replica matches
  // register on their claim words as they surface.
  if (threaded_) {
    std::vector<std::thread> workers;
    workers.reserve(shard_count());
    for (unsigned s = 0; s < shard_count(); ++s) {
      if (scratch_[s].armed == nullptr) continue;
      workers.emplace_back([this, s, &executor] {
        executor.execute(*scratch_[s].armed);
        register_claims(s);
      });
    }
    for (std::thread& w : workers) w.join();
  } else {
    for (unsigned s = 0; s < shard_count(); ++s) {
      if (scratch_[s].armed == nullptr) continue;
      executor.execute(*scratch_[s].armed);
      register_claims(s);
    }
  }

  if (claims_.contested()) {
    // Two shards matched replicas of one receive inside this block: void
    // the whole tentative block and re-match serially in global order —
    // the claim protocol's deterministic ground truth.
    ++sstats_.claims_contested;
    ++sstats_.block_repairs;
    claims_.clear_contested();
    for (ShardScratch& sc : scratch_)
      for (const Registration& reg : sc.regs) claims_.reset_claim(reg.claim_idx);
    for (unsigned s = 0; s < shard_count(); ++s)
      if (scratch_[s].armed != nullptr) shards_[s]->rollback_block();

    for (std::size_t i = 0; i < block.size(); ++i) {
      const unsigned s = shard_of(block[i].env.source);
      const std::span<const IncomingMessage> one(&block[i], 1);
      const std::span<const std::uint64_t> one_start =
          starts.empty() ? starts : starts.subspan(i, 1);
      // The stamp allocated in the partition pass above, re-derived from
      // the block base so repair and commit agree.
      const std::uint64_t stamp =
          global_arrival_ - static_cast<std::uint64_t>(block.size()) +
          static_cast<std::uint64_t>(i);
      BlockMatcher& m = shards_[s]->arm_block(one, one_start);
      executor.execute(m);
      const std::uint32_t slot = m.result(0).final_slot;
      repair_out_.clear();
      shards_[s]->commit_block(repair_out_,
                               std::span<const std::uint64_t>(&stamp, 1));
      out[i] = repair_out_.front();
      if (slot != kInvalidSlot) {
        const std::uint32_t claim_idx =
            shards_[s]->receives().desc(slot).claim_idx;
        // Retire the siblings *now* so no later message in this repair run
        // can match a replica of an already-won receive.
        if (claim_idx != kInvalidSlot) win_claim(claim_idx, s);
      }
    }
    return;
  }

  // Uncontested: every registered claim has a single registrant — the
  // parallel outcome equals the serial one. Retire the losers' replicas,
  // then commit each shard's epilogue and reassemble in global order.
  for (unsigned s = 0; s < shard_count(); ++s)
    for (const Registration& reg : scratch_[s].regs) win_claim(reg.claim_idx, s);
  for (unsigned s = 0; s < shard_count(); ++s) {
    ShardScratch& sc = scratch_[s];
    if (sc.armed == nullptr) continue;
    shards_[s]->commit_block(sc.out, sc.stamps);
    for (std::size_t j = 0; j < sc.out.size(); ++j)
      out[sc.global_pos[j]] = sc.out[j];
  }
}

std::vector<ArrivalOutcome> ShardedEngine::process(
    std::span<const IncomingMessage> msgs, BlockExecutor& executor,
    std::span<const std::uint64_t> arrival_cycles) {
  if (shard_count() == 1)
    return shards_[0]->process(msgs, executor, arrival_cycles);
  OTM_ASSERT(arrival_cycles.empty() || arrival_cycles.size() == msgs.size());
  SerialSection ingress(ingress_);
  std::vector<ArrivalOutcome> outcomes(msgs.size());
  for (std::size_t base = 0; base < msgs.size(); base += cfg_.block_size) {
    const std::size_t n =
        std::min<std::size_t>(cfg_.block_size, msgs.size() - base);
    const std::span<const std::uint64_t> starts =
        arrival_cycles.empty() ? arrival_cycles
                               : arrival_cycles.subspan(base, n);
    process_block(msgs.subspan(base, n), starts, executor,
                  std::span<ArrivalOutcome>(outcomes).subspan(base, n));
  }
  publish_sharded_metrics();
  return outcomes;
}

ArrivalOutcome ShardedEngine::process_one(const IncomingMessage& msg,
                                          BlockExecutor& executor) {
  const auto v = process(std::span<const IncomingMessage>(&msg, 1), executor);
  return v.front();
}

MatchStats ShardedEngine::stats() const {
  MatchStats total;
  for (const auto& e : shards_) total += e->snapshot();
  return total;
}

std::size_t ShardedEngine::posted_count() const {
  std::size_t n = 0;
  for (const auto& e : shards_) n += e->receives().posted_count();
  // Each live replicated receive is posted once per shard; count it once.
  n -= (shard_count() - 1) * claims_.live_claims();
  return n;
}

std::size_t ShardedEngine::unexpected_total() const {
  std::size_t n = 0;
  for (const auto& e : shards_) n += e->unexpected().size();
  return n;
}

std::uint64_t ShardedEngine::last_finish_cycles() const {
  std::uint64_t t = 0;
  for (const auto& e : shards_) t = std::max(t, e->last_finish_cycles());
  return t;
}

}  // namespace otm
