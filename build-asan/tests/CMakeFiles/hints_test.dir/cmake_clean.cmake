file(REMOVE_RECURSE
  "CMakeFiles/hints_test.dir/hints_test.cpp.o"
  "CMakeFiles/hints_test.dir/hints_test.cpp.o.d"
  "hints_test"
  "hints_test.pdb"
  "hints_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hints_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
