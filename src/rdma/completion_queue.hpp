// RDMA completion queue (Sec. IV-A).
//
// Completions are strictly ordered; the DPA dispatch scheme has thread i
// poll entry i, i+N, i+2N, ... so the queue supports indexed access in
// addition to sequential polling. Depth must be >= the block size N.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "util/assert.hpp"

namespace otm::rdma {

struct Cqe {
  std::uint64_t wr_id = 0;        ///< work-request cookie
  std::uint32_t byte_len = 0;     ///< received payload bytes
  std::uint64_t timestamp_ns = 0; ///< arrival time at the NIC
  std::uint64_t sequence = 0;     ///< global completion index on this CQ
};

class CompletionQueue {
 public:
  explicit CompletionQueue(std::size_t depth = 1024) : depth_(depth) {}

  /// True if the entry was accepted; false models a CQ overrun.
  bool push(Cqe e) {
    if (entries_.size() >= depth_) return false;
    e.sequence = next_seq_++;
    entries_.push_back(e);
    return true;
  }

  /// Sequential poll: pop the oldest completion.
  std::optional<Cqe> poll() {
    if (entries_.empty()) return std::nullopt;
    const Cqe e = entries_.front();
    entries_.pop_front();
    return e;
  }

  /// Indexed peek for the per-thread polling scheme: entry with global
  /// sequence number `seq`, if currently queued.
  std::optional<Cqe> peek_sequence(std::uint64_t seq) const {
    if (entries_.empty()) return std::nullopt;
    const std::uint64_t first = entries_.front().sequence;
    if (seq < first || seq >= first + entries_.size()) return std::nullopt;
    return entries_[seq - first];
  }

  /// Drop all entries up to and including `seq` (consumed by a block).
  void consume_through(std::uint64_t seq) {
    while (!entries_.empty() && entries_.front().sequence <= seq)
      entries_.pop_front();
  }

  std::size_t available() const noexcept { return entries_.size(); }
  bool full() const noexcept { return entries_.size() >= depth_; }
  std::size_t depth() const noexcept { return depth_; }
  std::uint64_t next_sequence() const noexcept { return next_seq_; }

 private:
  std::size_t depth_;
  std::deque<Cqe> entries_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace otm::rdma
