// Helper for emitting per-rank operation streams with consistent
// timestamps. Each rank has its own clock advancing per emitted call;
// sync points (barriers, phase boundaries) align all clocks so the global
// timestamp merge in the analyzer interleaves phases realistically.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "trace/ops.hpp"
#include "util/assert.hpp"

namespace otm::trace {

class TraceBuilder {
 public:
  TraceBuilder(std::string app, int num_ranks) {
    trace_.app_name = std::move(app);
    trace_.num_ranks = num_ranks;
    trace_.ranks.resize(static_cast<std::size_t>(num_ranks));
    for (int r = 0; r < num_ranks; ++r)
      trace_.ranks[static_cast<std::size_t>(r)].rank = static_cast<Rank>(r);
    clocks_.assign(static_cast<std::size_t>(num_ranks), 0.0);
    next_request_.assign(static_cast<std::size_t>(num_ranks), 1);
    for (int r = 0; r < num_ranks; ++r) emit(static_cast<Rank>(r), OpType::kInit, {});
  }

  int num_ranks() const noexcept { return trace_.num_ranks; }

  std::uint64_t isend(Rank from, Rank to, Tag tag, std::uint32_t bytes,
                      CommId comm = 0) {
    TraceOp op;
    op.peer = to;
    op.tag = tag;
    op.bytes = bytes;
    op.comm = comm;
    op.request = next_request_[static_cast<std::size_t>(from)]++;
    emit(from, OpType::kIsend, op);
    return op.request;
  }

  void send(Rank from, Rank to, Tag tag, std::uint32_t bytes, CommId comm = 0) {
    TraceOp op;
    op.peer = to;
    op.tag = tag;
    op.bytes = bytes;
    op.comm = comm;
    emit(from, OpType::kSend, op);
  }

  std::uint64_t irecv(Rank at, Rank src, Tag tag, std::uint32_t bytes,
                      CommId comm = 0) {
    TraceOp op;
    op.peer = src;
    op.tag = tag;
    op.bytes = bytes;
    op.comm = comm;
    op.request = next_request_[static_cast<std::size_t>(at)]++;
    emit(at, OpType::kIrecv, op);
    return op.request;
  }

  void recv(Rank at, Rank src, Tag tag, std::uint32_t bytes, CommId comm = 0) {
    TraceOp op;
    op.peer = src;
    op.tag = tag;
    op.bytes = bytes;
    op.comm = comm;
    emit(at, OpType::kRecv, op);
  }

  void wait(Rank at, std::uint64_t request) {
    TraceOp op;
    op.request = request;
    emit(at, OpType::kWait, op);
  }

  void waitall(Rank at, std::uint32_t count) {
    TraceOp op;
    op.bytes = count;
    emit(at, OpType::kWaitall, op);
  }

  /// A collective on all ranks; aligns every clock afterwards (collectives
  /// synchronize in practice, and exact interleave does not affect p2p
  /// matching statistics).
  void collective_all(OpType type, std::uint32_t bytes, CommId comm = 0) {
    for (Rank r = 0; r < trace_.num_ranks; ++r) {
      TraceOp op;
      op.bytes = bytes;
      op.comm = comm;
      emit(r, type, op);
    }
    sync_clocks();
  }

  void collective_one(Rank r, OpType type, std::uint32_t bytes, CommId comm = 0) {
    TraceOp op;
    op.bytes = bytes;
    op.comm = comm;
    emit(r, type, op);
  }

  void barrier_all() { collective_all(OpType::kBarrier, 0); }

  /// Align every rank clock to the global maximum (phase boundary).
  void sync_clocks() {
    const double m = *std::max_element(clocks_.begin(), clocks_.end());
    std::fill(clocks_.begin(), clocks_.end(), m);
  }

  void advance(Rank r, double seconds) {
    clocks_[static_cast<std::size_t>(r)] += seconds;
  }
  void advance_all(double seconds) {
    for (double& c : clocks_) c += seconds;
  }

  Trace finish() {
    for (Rank r = 0; r < trace_.num_ranks; ++r)
      emit(r, OpType::kFinalize, {});
    return std::move(trace_);
  }

 private:
  void emit(Rank r, OpType type, TraceOp op) {
    OTM_ASSERT(r >= 0 && r < trace_.num_ranks);
    op.type = type;
    double& clock = clocks_[static_cast<std::size_t>(r)];
    op.start_ts = clock;
    clock += kOpDuration;
    op.end_ts = clock;
    trace_.ranks[static_cast<std::size_t>(r)].ops.push_back(op);
  }

  static constexpr double kOpDuration = 1e-6;

  Trace trace_;
  std::vector<double> clocks_;
  std::vector<std::uint64_t> next_request_;
};

}  // namespace otm::trace
