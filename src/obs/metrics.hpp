// Metrics registry: named counters, gauges and fixed-bucket histograms with
// JSON/CSV snapshot writers (the MPI-Advance-style introspection surface of
// the observability layer).
//
// Metric objects are created once through the registry (mutex-protected,
// allocation at registration time only) and then updated lock-free through
// stable references — hot paths resolve their handles at attach time and
// never touch the registry again. All update operations are relaxed
// atomics: totals are exact, cross-metric ordering is not promised.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

namespace otm::obs {

/// Monotonic counter (set() exists for mirroring engine-local totals).
/// All operations relaxed: totals are exact, cross-metric ordering is not
/// promised (header contract), and metrics must never add fences to the
/// paths they observe.
class Counter {
 public:
  // relaxed: see class comment (totals exact, no ordering promised).
  void inc(std::uint64_t d = 1) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  // relaxed: see class comment.
  void set(std::uint64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  // relaxed: see class comment.
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value gauge with a fetch-max variant for high-water marks.
/// All operations relaxed for the same reason as Counter.
class Gauge {
 public:
  // relaxed: observe-only metric, no ordering promised.
  void set(std::uint64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  // relaxed fetch-max loop: the maximum is value-monotonic, so ordering
  // between contending writers is irrelevant.
  void update_max(std::uint64_t v) noexcept {
    std::uint64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&  // relaxed CAS: same fetch-max argument as above
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  // relaxed: observe-only metric.
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Fixed-bucket histogram: bucket i counts observations with
/// value <= bound[i] (first matching bucket); the last bucket is +inf.
class Histogram {
 public:
  explicit Histogram(std::span<const std::uint64_t> upper_bounds);

  void observe(std::uint64_t v) noexcept;

  std::size_t num_buckets() const noexcept { return buckets_.size(); }
  /// Inclusive upper bound of bucket i (i == num_buckets()-1 is +inf).
  std::uint64_t bound(std::size_t i) const noexcept { return bounds_[i]; }
  // All reads relaxed: each total is individually exact; a snapshot taken
  // concurrently with observe() may see count/sum/buckets from different
  // instants, which the JSON/CSV writers document.
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  // relaxed: see bucket_count().
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  // relaxed: see bucket_count().
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  // relaxed: see bucket_count().
  std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

 private:
  std::vector<std::uint64_t> bounds_;  ///< ascending; last = ~0 (+inf)
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. References stay valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_bounds` must be ascending; ignored when the histogram already
  /// exists (first registration wins).
  Histogram& histogram(std::string_view name,
                       std::span<const std::uint64_t> upper_bounds);

  std::size_t size() const;

  /// Snapshot writers. JSON: one object with "counters", "gauges",
  /// "histograms" sections. CSV: kind,name,field,value rows.
  void write_json(std::ostream& os) const;
  void write_csv(std::ostream& os) const;

 private:
  mutable AnnotatedMutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      OTM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      OTM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      OTM_GUARDED_BY(mu_);
};

}  // namespace otm::obs
