// In-process RDMA fabric: queue pairs, two-sided send/recv into bounce
// buffers, one-sided reads, and a wire/PCIe latency model.
//
// Substitution note (DESIGN.md §2): this replaces the paper's BlueField-3
// ConnectX fabric between two Xeon servers. Payload bytes move for real
// (memcpy through staged buffers); time is modeled in nanoseconds with
// explicit latency/bandwidth parameters, so message-rate crossovers are
// reproducible rather than host-machine artifacts.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "rdma/completion_queue.hpp"
#include "rdma/fault.hpp"
#include "rdma/memory.hpp"
#include "util/assert.hpp"
#include "util/thread_annotations.hpp"

namespace otm::rdma {

struct FabricConfig {
  double wire_latency_ns = 600.0;      ///< one-way NIC-to-NIC latency
  double bandwidth_bytes_per_ns = 50.0;///< 400 Gb/s
  double pcie_latency_ns = 300.0;      ///< NIC <-> host memory crossing
  double host_copy_bytes_per_ns = 20.0;///< host-side memcpy bandwidth
  FaultConfig fault{};                 ///< chaos model (off by default)

  double serialize_ns(std::size_t bytes) const noexcept {
    return bandwidth_bytes_per_ns <= 0
               ? 0.0
               : static_cast<double>(bytes) / bandwidth_bytes_per_ns;
  }
};

/// Transfer-time bookkeeping for the directed links of the fabric.
class Fabric {
 public:
  explicit Fabric(const FabricConfig& cfg = {}) : cfg_(cfg) {
    if (cfg_.fault.enabled)
      injector_ = std::make_unique<FaultInjector>(cfg_.fault);
  }

  NodeId add_node() {
    const NodeId id = static_cast<NodeId>(num_nodes_++);
    return id;
  }

  const FabricConfig& config() const noexcept { return cfg_; }

  /// Non-null iff fault injection is enabled for this fabric.
  FaultInjector* injector() noexcept { return injector_.get(); }
  const FaultInjector* injector() const noexcept { return injector_.get(); }

  /// Model one message of `bytes` leaving `src` for `dst` at `send_ns`.
  /// Returns its arrival time; the link serializes back-to-back messages.
  std::uint64_t transfer(NodeId src, NodeId dst, std::size_t bytes,
                         std::uint64_t send_ns) {
    SerialSection wire(wire_);
    OTM_ASSERT(src < num_nodes_ && dst < num_nodes_);
    if (link_free_.size() < num_nodes_ * num_nodes_)
      link_free_.resize(num_nodes_ * num_nodes_, 0);
    std::uint64_t& free_at = link_free_[src * num_nodes_ + dst];
    const std::uint64_t start = send_ns > free_at ? send_ns : free_at;
    const auto ser = static_cast<std::uint64_t>(cfg_.serialize_ns(bytes));
    free_at = start + ser;
    return start + ser + static_cast<std::uint64_t>(cfg_.wire_latency_ns);
  }

  std::size_t num_nodes() const noexcept { return num_nodes_; }

 private:
  FabricConfig cfg_;
  std::size_t num_nodes_ = 0;
  /// Fabric-wide serialization domain: all endpoints of one fabric live on
  /// one driver thread (simulation contract), so the shared link-occupancy
  /// table is written only inside a SerialSection here.
  SerialDomain wire_;
  std::vector<std::uint64_t> link_free_ OTM_GUARDED_BY(wire_);
  std::unique_ptr<FaultInjector> injector_;
};

/// Shared receive queue: receive WQEs consumable by any QP of the owning
/// endpoint (mirrors InfiniBand SRQs; lets one bounce pool serve all peers).
class SharedReceiveQueue {
 public:
  struct PostedRecv {
    std::uint64_t wr_id;
    std::span<std::byte> buffer;
  };

  void post(std::uint64_t wr_id, std::span<std::byte> buffer) {
    queue_.push_back({wr_id, buffer});
  }

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t size() const noexcept { return queue_.size(); }

  PostedRecv consume() {
    OTM_ASSERT(!queue_.empty());
    const PostedRecv r = queue_.front();
    queue_.pop_front();
    return r;
  }

 private:
  std::deque<PostedRecv> queue_;
};

/// A connected queue pair. Two-sided sends copy payload into the peer's
/// next posted receive buffer and generate a completion on the peer's CQ;
/// one-sided reads pull from the peer's registered memory.
class QueuePair {
 public:
  /// `lane` is the ingress lane this QP is bound to on its *receiving* side:
  /// completions land on `recv_cq` (the lane's CQ) and fault injection is
  /// gated by FaultConfig::lane_mask bit `lane`. Single-lane endpoints use
  /// the default lane 0 and behave exactly as before.
  QueuePair(Fabric& fabric, NodeId node, CompletionQueue& recv_cq,
            MemoryRegistry& registry, SharedReceiveQueue& srq,
            std::uint16_t lane = 0)
      : fabric_(&fabric),
        node_(node),
        recv_cq_(&recv_cq),
        registry_(&registry),
        srq_(&srq),
        lane_(lane) {}

  void connect(QueuePair& peer) {
    peer_ = &peer;
    peer.peer_ = this;
  }

  bool connected() const noexcept { return peer_ != nullptr; }
  NodeId node() const noexcept { return node_; }
  /// Ingress lane this QP serves. Both halves of a connected pair are built
  /// with the same lane (the receiver's steering decision), so either end's
  /// value names the flow's lane.
  std::uint16_t lane() const noexcept { return lane_; }
  MemoryRegistry& registry() noexcept { return *registry_; }

  /// Post a receive work request pointing at a staging buffer (lands on
  /// the endpoint's shared receive queue).
  void post_recv(std::uint64_t wr_id, std::span<std::byte> buffer) {
    srq_->post(wr_id, buffer);
  }

  std::size_t posted_recvs() const noexcept { return srq_->size(); }

  enum class SendStatus : std::uint8_t {
    kOk,       ///< accepted by the fabric (delivery not guaranteed under faults)
    kRnr,      ///< receiver-not-ready: no receive WQE posted
    kCqFull,   ///< receiver CQ full: backpressure, nothing was consumed
    kQpError,  ///< QP is in the error state: every post fails until reset()
  };

  /// Explicit QP error lifecycle (IB verbs RTS -> ERR -> RESET -> RTS,
  /// collapsed to the three states the simulation distinguishes). A QP
  /// enters kError via the fault injector's forced QP errors or fail();
  /// while errored every post_send returns kQpError. reset() walks
  /// kError -> kDraining -> kReady, flushing in-flight WQEs.
  enum class State : std::uint8_t { kReady, kError, kDraining };

  struct SendResult {
    SendStatus status = SendStatus::kRnr;
    bool delivered = false;        ///< a copy reached the receiver synchronously
    std::uint64_t arrival_ns = 0;  ///< completion timestamp at the receiver
    std::uint64_t recv_wr_id = 0;  ///< which receive WQE absorbed it
  };

  /// Two-sided send: consume the peer's oldest posted receive, copy the
  /// payload, and push a completion on the peer's CQ. A full receiver CQ is
  /// reported as recoverable backpressure (kCqFull) — no WQE is consumed and
  /// the caller may retry after the receiver drains. Under fault injection
  /// the packet may additionally be dropped, duplicated, corrupted or held
  /// back behind later sends; `delivered` then reflects only the synchronous
  /// outcome the sender-side NIC could observe.
  SendResult post_send(std::span<const std::byte> data, std::uint64_t send_ns) {
    SerialSection qp(serial_);
    OTM_ASSERT_MSG(peer_ != nullptr, "QP not connected");
    if (state_ != State::kReady) return {SendStatus::kQpError, false, 0, 0};
    FaultInjector* fi = fabric_->injector();
    if (fi != nullptr && fi->forced_qp_error(node_, peer_->node_, lane_)) {
      state_ = State::kError;
      return {SendStatus::kQpError, false, 0, 0};
    }
    if (fi != nullptr && fi->forced_rnr(node_, peer_->node_, lane_))
      return {SendStatus::kRnr, false, 0, 0};

    const auto fate = fi != nullptr ? fi->next_fate(node_, peer_->node_, lane_)
                                    : FaultInjector::Fate::kDeliver;
    SendResult result{};
    switch (fate) {
      case FaultInjector::Fate::kDrop:
        result = {SendStatus::kOk, false, 0, 0};  // lost in flight
        break;
      case FaultInjector::Fate::kHold:
        held_.push_back({std::vector<std::byte>(data.begin(), data.end()),
                         fi->hold_delay(node_, peer_->node_)});
        result = {SendStatus::kOk, false, 0, 0};
        break;
      case FaultInjector::Fate::kDuplicate:
        result = deliver_one(data, send_ns, /*corrupt=*/false);
        if (result.delivered)  // second copy is best-effort
          deliver_one(data, send_ns, /*corrupt=*/false);
        break;
      case FaultInjector::Fate::kCorrupt:
        result = deliver_one(data, send_ns, /*corrupt=*/true);
        break;
      case FaultInjector::Fate::kDeliver:
        result = deliver_one(data, send_ns, /*corrupt=*/false);
        break;
    }
    flush_held(send_ns);
    return result;
  }

  /// Current lifecycle state. Reads race nothing: all QP calls run on the
  /// owning endpoint's driver thread (the serial_ contract below).
  State state() const noexcept { return state_; }

  /// Force the QP into the error state (peer teardown, tests, upper-layer
  /// fencing). Idempotent.
  void fail() noexcept {
    SerialSection qp(serial_);
    state_ = State::kError;
  }

  /// Recover an errored QP: kError -> kDraining -> kReady. In-flight WQEs
  /// (the held/reordered packets still owned by this QP) are flushed — the
  /// modeled analogue of flushed-error CQEs on the send queue; since sends
  /// complete synchronously here, the flush reduces to dropping them and
  /// counting `flushed_wqes()`. Returns the number flushed. Callable from
  /// any state (a ready QP just drains its held packets).
  std::size_t reset() {
    SerialSection qp(serial_);
    state_ = State::kDraining;
    const std::size_t flushed = held_.size();
    held_.clear();
    flushed_wqes_ += flushed;
    state_ = State::kReady;
    return flushed;
  }

  /// Total WQEs flushed as errors across every reset() of this QP.
  std::uint64_t flushed_wqes() const noexcept { return flushed_wqes_; }

  /// Digest of the in-flight state this QP still owns — the lifecycle
  /// state and every held (reordered) packet's bytes and remaining delay.
  /// Folded into Endpoint::verify_fingerprint so the model checker's
  /// subsumption cache never merges two states that differ only in
  /// packets parked inside the fabric (docs/VERIFICATION.md).
  std::uint64_t verify_digest() const {
    SerialSection qp(serial_);
    std::uint64_t h = 0x9d5ULL ^ static_cast<std::uint64_t>(state_) ^
                      (static_cast<std::uint64_t>(lane_) << 8);
    for (const Held& held : held_) {
      h = (h ^ held.release_after) * 0x100000001b3ULL;
      h = (h ^ held.bytes.size()) * 0x100000001b3ULL;
      // The wire header (first bytes) carries seq/epoch/flags — the
      // semantic identity of the packet.
      const std::size_t n = held.bytes.size() < 48 ? held.bytes.size() : 48;
      for (std::size_t i = 0; i < n; ++i)
        h = (h ^ static_cast<std::uint8_t>(held.bytes[i])) * 0x100000001b3ULL;
    }
    return h;
  }

  /// One-sided read from the peer's registered memory into `dst`.
  /// Returns the completion time (round trip + serialization).
  std::uint64_t rdma_read(std::uint32_t rkey, std::uint64_t remote_offset,
                          std::span<std::byte> dst, std::uint64_t issue_ns) {
    OTM_ASSERT_MSG(peer_ != nullptr, "QP not connected");
    const auto src = peer_->registry_->resolve(rkey, remote_offset, dst.size());
    std::copy(src.begin(), src.end(), dst.begin());
    // Request flies over, data flies back: one RTT plus data serialization.
    const std::uint64_t there =
        fabric_->transfer(node_, peer_->node_, /*bytes=*/32, issue_ns);
    return fabric_->transfer(peer_->node_, node_, dst.size(), there);
  }

 private:
  SendResult deliver_one(std::span<const std::byte> data, std::uint64_t send_ns,
                         bool corrupt) {
    if (peer_->recv_cq_->full()) return {SendStatus::kCqFull, false, 0, 0};
    if (peer_->srq_->empty()) return {SendStatus::kRnr, false, 0, 0};
    const auto [wr_id, buffer] = peer_->srq_->consume();
    OTM_ASSERT_MSG(buffer.size() >= data.size(), "receive buffer too small");

    std::copy(data.begin(), data.end(), buffer.begin());
    if (corrupt)
      fabric_->injector()->corrupt(node_, peer_->node_,
                                   buffer.first(data.size()));
    const std::uint64_t arrival =
        fabric_->transfer(node_, peer_->node_, data.size(), send_ns);
    Cqe cqe;
    cqe.wr_id = wr_id;
    cqe.byte_len = static_cast<std::uint32_t>(data.size());
    cqe.timestamp_ns = arrival;
    const bool ok = peer_->recv_cq_->push(cqe);
    OTM_ASSERT(ok);  // full() was checked above
    return {SendStatus::kOk, true, arrival, wr_id};
  }

  /// Release held-back (reordered) packets whose delay elapsed. Delivery is
  /// best-effort: a release that hits RNR/CQ-full turns into a drop, which
  /// the reliability layer recovers via retransmission.
  void flush_held(std::uint64_t now_ns) OTM_REQUIRES(serial_) {
    for (auto& h : held_) {
      if (h.release_after > 0) --h.release_after;
    }
    for (;;) {
      const auto it = std::find_if(held_.begin(), held_.end(), [](const Held& h) {
        return h.release_after == 0;
      });
      if (it == held_.end()) break;
      deliver_one(it->bytes, now_ns, /*corrupt=*/false);
      held_.erase(it);
    }
  }

  struct Held {
    std::vector<std::byte> bytes;
    std::uint32_t release_after;  ///< remaining sends before delivery
  };

  Fabric* fabric_;
  NodeId node_;
  CompletionQueue* recv_cq_;
  MemoryRegistry* registry_;
  SharedReceiveQueue* srq_;
  std::uint16_t lane_ = 0;
  QueuePair* peer_ = nullptr;
  /// QP serialization domain (sends on one QP never overlap — the verbs
  /// contract a real provider imposes on an unlocked QP).
  SerialDomain serial_;
  std::deque<Held> held_ OTM_GUARDED_BY(serial_);
  /// Lifecycle state; mutated only inside serial sections, read by the same
  /// driver thread (unannotated for the accessor, same phase discipline as
  /// the rest of the QP).
  State state_ = State::kReady;
  std::uint64_t flushed_wqes_ = 0;
};

}  // namespace otm::rdma
