// Modeled-cycle accounting for matching primitives.
//
// The paper's Fig. 8 measures message rate on BlueField-3 silicon; our
// reproduction executes the identical algorithm on host threads and models
// *time* by charging a calibrated cycle cost per primitive. The matching
// decisions are real; only the clock is simulated. Synchronization costs are
// modeled through the published timestamps of the partial barriers and the
// slow-path resolution chain (see ThreadClock and BlockMatcher).
//
// Two presets are provided: a DPA-like lightweight core (slower per-op,
// highly parallel) and a host-CPU core (fast per-op, serial matching). The
// ratios — not the absolute values — carry the figure's shape.
#pragma once

#include <cstdint>

namespace otm {

/// Cycle cost of each matching primitive.
struct CostTable {
  std::uint64_t hash_compute = 0;     ///< one hash evaluation (src/tag mixes)
  std::uint64_t bin_lookup = 0;       ///< index into a bin, read head
  std::uint64_t chain_step = 0;       ///< examine one chain entry (load+compare)
  std::uint64_t hot_scan_step = 0;    ///< examine one packed hot-array entry
  std::uint64_t label_compare = 0;    ///< cross-index candidate selection
  std::uint64_t booking_cas = 0;      ///< CAS on the booking bitmap
  std::uint64_t barrier_overhead = 0; ///< arrive + observe a partial barrier
  std::uint64_t conflict_check = 0;   ///< read booking bitmap, mask, test
  std::uint64_t fast_path_step = 0;   ///< one shift step along the sequence
  std::uint64_t slow_path_sync = 0;   ///< wait-handoff from the previous thread
  std::uint64_t research_overhead = 0;///< restart a full search in resolution
  std::uint64_t consume = 0;          ///< finalize: state CAS, descriptor write
  std::uint64_t unexpected_insert = 0;///< append message to the UMQ indexes
  std::uint64_t cqe_poll = 0;         ///< poll + decode one completion entry
  std::uint64_t eager_copy_per_byte_x1000 = 0;  ///< payload copy, milli-cycles/B
  std::uint64_t lock_acquire = 0;     ///< bin spinlock (eager removal)
  std::uint64_t unlink = 0;           ///< chain unlink under the lock

  /// NVIDIA BF3 DPA-like lightweight core @ ~1.5 GHz: cheap ALU ops but
  /// NIC-memory loads dominate; synchronization via shared NIC memory.
  static constexpr CostTable dpa() noexcept {
    CostTable c;
    c.hash_compute = 24;
    c.bin_lookup = 30;
    c.chain_step = 38;
    c.hot_scan_step = 10;  // packed 32 B entries: sequential NIC-SRAM scan
    c.label_compare = 6;
    c.booking_cas = 60;
    c.barrier_overhead = 90;
    c.conflict_check = 30;
    c.fast_path_step = 38;
    c.slow_path_sync = 260;
    c.research_overhead = 50;
    c.consume = 60;
    c.unexpected_insert = 150;
    c.cqe_poll = 70;
    c.eager_copy_per_byte_x1000 = 250;  // 0.25 cycles/B: on-NIC SRAM copy
    c.lock_acquire = 80;
    c.unlink = 50;
    return c;
  }

  /// Host Xeon-like core @ ~2.0 GHz (Fig. 8 testbed: Xeon Platinum 8480+):
  /// faster per-op, but matching is serial and every message crosses PCIe.
  static constexpr CostTable host_cpu() noexcept {
    CostTable c;
    c.hash_compute = 8;
    c.bin_lookup = 10;
    c.chain_step = 12;
    c.hot_scan_step = 4;  // contiguous scan: prefetcher-friendly
    c.label_compare = 2;
    c.booking_cas = 20;
    c.barrier_overhead = 30;
    c.conflict_check = 10;
    c.fast_path_step = 12;
    c.slow_path_sync = 90;
    c.research_overhead = 16;
    c.consume = 20;
    c.unexpected_insert = 60;
    c.cqe_poll = 120;  // host CQ poll crosses PCIe-attached memory
    c.eager_copy_per_byte_x1000 = 120;
    c.lock_acquire = 25;
    c.unlink = 16;
    return c;
  }
};

/// Per-thread modeled clock. A null cost table disables accounting so the
/// hot path stays branch-cheap in correctness tests.
class ThreadClock {
 public:
  ThreadClock() noexcept = default;
  explicit ThreadClock(const CostTable* costs, std::uint64_t start = 0) noexcept
      : costs_(costs), cycles_(start) {}

  bool enabled() const noexcept { return costs_ != nullptr; }
  const CostTable* costs() const noexcept { return costs_; }

  std::uint64_t cycles() const noexcept { return cycles_; }
  void set(std::uint64_t c) noexcept { cycles_ = c; }

  /// Advance to `t` if `t` is later (used for synchronization joins).
  void sync_to(std::uint64_t t) noexcept {
    if (t > cycles_) cycles_ = t;
  }

  void charge(std::uint64_t c) noexcept { cycles_ += c; }

  void charge_copy(std::uint64_t bytes) noexcept {
    if (costs_ != nullptr)
      cycles_ += bytes * costs_->eager_copy_per_byte_x1000 / 1000;
  }

 private:
  const CostTable* costs_ = nullptr;
  std::uint64_t cycles_ = 0;
};

/// Charge helper: no-op when accounting is off.
#define OTM_CHARGE(clock, field)                                     \
  do {                                                               \
    if ((clock).enabled()) (clock).charge((clock).costs()->field);   \
  } while (false)

}  // namespace otm
