# Empty dependencies file for offload_pingpong.
# This may be replaced when dependencies are built.
