file(REMOVE_RECURSE
  "CMakeFiles/otm-tracegen.dir/trace_gen.cpp.o"
  "CMakeFiles/otm-tracegen.dir/trace_gen.cpp.o.d"
  "otm-tracegen"
  "otm-tracegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otm-tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
