file(REMOVE_RECURSE
  "CMakeFiles/otm_dpa.dir/accelerator.cpp.o"
  "CMakeFiles/otm_dpa.dir/accelerator.cpp.o.d"
  "libotm_dpa.a"
  "libotm_dpa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otm_dpa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
