// DpaAccelerator: the offloaded matching device of Sec. IV.
//
// Hosts one MatchEngine per registered MPI communicator (Sec. IV-E: "each
// MPI communicator is linked to its own set of index tables and data
// structures") under a DPA memory budget; registration fails when the
// budget is exhausted, signalling the software-matching fallback.
//
// Models (a) the DPA cost table, (b) hart-slot pipelining — thread slot t
// of a later block cannot start before slot t's previous run-to-completion
// handler finished — and (c) serial CQE dispatch. The matching logic runs
// for real; only time is modeled (DESIGN.md §6).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include <array>

#include "core/engine.hpp"
#include "core/sharded_engine.hpp"
#include "dpa/dpa_config.hpp"

namespace otm {

class DpaAccelerator {
 public:
  /// Registers communicator 0 with `default_match_cfg`.
  DpaAccelerator(const DpaConfig& dpa_cfg, const MatchConfig& default_match_cfg);

  DpaAccelerator(const DpaAccelerator&) = delete;
  DpaAccelerator& operator=(const DpaAccelerator&) = delete;

  /// Allocate per-communicator matching structures on the DPA. Fails (and
  /// leaves the communicator to software matching) when the memory budget
  /// cannot accommodate them or the comm is already registered.
  bool register_comm(CommId comm, const MatchConfig& cfg);

  bool comm_registered(CommId comm) const noexcept {
    return engines_.find(comm) != engines_.end();
  }

  /// Wire every registered engine (and engines registered later) into an
  /// observability context. Each communicator's engine gets the prefix
  /// "<prefix>.comm<id>"; accelerator-level gauges live under "<prefix>".
  void attach_observability(obs::Observability* obs,
                            std::string_view prefix = "dpa");
  obs::Observability* observability() const noexcept { return obs_; }

  /// DPA memory consumed by all registered communicators' structures.
  std::size_t memory_used() const noexcept { return memory_used_; }

  /// Host posts a receive via the command QP. Routes on spec.comm; returns
  /// kFallback for unregistered communicators (software tag matching).
  PostOutcome post_receive(const MatchSpec& spec, std::uint64_t buffer_addr = 0,
                           std::uint32_t buffer_capacity = 0,
                           std::uint64_t cookie = 0);

  /// MPI_Iprobe routed on spec.comm (nullopt for unregistered comms, which
  /// the endpoint probes in software).
  std::optional<ProbeResult> probe(const MatchSpec& spec);

  /// MPI_Cancel routed on `comm` (nullopt when the comm is unregistered or
  /// no pending receive carries the cookie).
  std::optional<std::uint64_t> cancel_receive(CommId comm, std::uint64_t cookie);

  /// Messages arriving at the NIC at `arrival_cycles` (DPA clock domain,
  /// parallel to msgs; empty = back-to-back from now()). All messages must
  /// target registered communicators (the endpoint routes others to the
  /// host). Returns outcomes with modeled finish times, in arrival order.
  std::vector<ArrivalOutcome> deliver(std::span<const IncomingMessage> msgs,
                                      std::span<const std::uint64_t> arrival_cycles = {});

  // --- Multi-lane ingress (docs/SHARDING.md §"Ingress lanes") -------------
  // With lanes > 1 the endpoint owns one CQ per lane and a lane-pinned
  // polling hart reaps each independently: deliver() partitions every
  // same-comm run by steer_lane(source) and forms per-lane blocks with a
  // per-lane CQE clock (batched reaping, DpaConfig::lane_cqe_batch_interval)
  // and per-lane hart-slot pipelines — no cross-lane dispatch lockstep.

  /// Configure the ingress lane count (power of two, <= kMaxShards).
  /// lanes == 1 keeps the shared-CQ model byte-identical to before.
  void set_ingress_lanes(unsigned lanes);
  unsigned ingress_lanes() const noexcept { return lanes_; }

  /// The single engine of an unsharded communicator `comm` (must be
  /// registered with cfg.shards == 1 — asserted). Sharded communicators are
  /// inspected through sharded_engine().
  MatchEngine& engine(CommId comm = 0);
  const MatchEngine& engine(CommId comm = 0) const;

  /// The (possibly K == 1) sharded engine of communicator `comm`.
  ShardedEngine& sharded_engine(CommId comm = 0);
  const ShardedEngine& sharded_engine(CommId comm = 0) const;

  /// Posting-label watermark of `comm` (0 for unregistered comms): the C1
  /// allocation counter the verification oracles sample after every
  /// scheduler step (monotone, +1 per accepted post — docs/VERIFICATION.md).
  std::uint64_t labels_allocated(CommId comm) const noexcept {
    const auto it = engines_.find(comm);
    return it == engines_.end() ? 0 : comm_labels_allocated(*it->second);
  }

  /// Statistics aggregated over every registered communicator.
  MatchStats total_stats() const;

  const DpaConfig& config() const noexcept { return cfg_; }

  /// Modeled DPA time: completion of the latest handler.
  std::uint64_t now() const noexcept { return now_; }

  /// Matching work executed on the DPA (cycles summed over harts). The
  /// complementary host metric is zero by construction — that is the point
  /// of the offload (Sec. VI: "the offloading fully frees the host CPU").
  std::uint64_t busy_cycles() const noexcept { return busy_cycles_; }
  std::uint64_t host_matching_cycles() const noexcept { return 0; }

  // --- Health watchdog (DpaConfig::Watchdog, docs/RELIABILITY.md §5) ------
  // The watchdog extends the paper's Sec. IV-E fallback from a static
  // capacity limit to a dynamic health signal: a sick DPA demotes new
  // traffic to the host software-matching path; a healthy window re-offers
  // promotion. The *endpoint* owns the route flip — it evicts NIC state via
  // drain_all() on demotion and re-promotes only once the host domain is
  // drained, so matching order is never split across two live domains.

  bool watchdog_enabled() const noexcept { return cfg_.watchdog.enabled; }

  /// True while demoted: new posts and arrivals belong on the host path.
  bool degraded() const noexcept { return degraded_; }

  /// True when a demoted accelerator has stayed clean for
  /// `healthy_window` consecutive ticks (hysteresis) and may be re-promoted.
  bool promotable() const noexcept {
    return degraded_ && healthy_ticks_ >= cfg_.watchdog.healthy_window;
  }

  /// One watchdog tick per endpoint progress() call; `pressure` reports
  /// CQ-full / engine-drop evidence the endpoint observed this tick.
  /// Advances streaks, demotes on threshold, accrues the healthy window.
  void watchdog_tick(bool pressure) noexcept;

  /// Close a demotion window: clear the streaks and the degraded flag. The
  /// endpoint calls this only after the host matching domain is empty.
  void promote() noexcept;

  /// Operational/test override: demote immediately (no-op when the
  /// watchdog is disabled).
  void force_demote() noexcept {
    if (cfg_.watchdog.enabled) demote();
  }

  /// Stall events observed since the last promotion (test/metrics).
  std::uint32_t stall_events() const noexcept { return stall_events_; }

  /// Demotion eviction: withdraw every communicator's pending receives
  /// (appended to `receives`, posting-label order per comm) and stored
  /// unexpected messages (appended to `ums`, arrival order per comm) so
  /// the endpoint can migrate them into the host matching domain.
  void drain_all(std::vector<MatchEngine::DrainedReceive>& receives,
                 std::vector<UnexpectedDescriptor>& ums);

  // --- Per-lane watchdog (multi-lane ingress only) ------------------------
  // Each lane-pinned polling hart carries its own health state: sustained
  // CQ pressure on lane k demotes *that lane* to host matching (its shard's
  // receives evicted via drain_lane_shard) while sibling lanes keep their
  // offloaded path. Thresholds come from the same DpaConfig::Watchdog.

  /// True while lane `lane` is demoted to host matching.
  bool lane_degraded(unsigned lane) const noexcept {
    return lane < kMaxShards && lane_degraded_[lane];
  }

  /// Any lane demoted (cheap gate for the endpoint's rx routing).
  bool any_lane_degraded() const noexcept { return lanes_degraded_ != 0; }

  /// Per-lane analogue of watchdog_tick(): advance lane `lane`'s pressure
  /// streak / healthy window with this tick's CQ-full evidence.
  void lane_watchdog_tick(unsigned lane, bool pressure) noexcept;

  /// True when demoted lane `lane` stayed clean for `healthy_window` ticks.
  bool lane_promotable(unsigned lane) const noexcept {
    return lane_degraded(lane) &&
           lane_healthy_ticks_[lane] >= cfg_.watchdog.healthy_window;
  }

  /// Close lane `lane`'s demotion window (endpoint calls this after the
  /// lane's host-domain state is drained back).
  void lane_promote(unsigned lane) noexcept;

  /// Operational/test override: demote lane `lane` immediately (no-op when
  /// the watchdog is disabled).
  void force_demote_lane(unsigned lane) noexcept;

  /// Lane-local demotion eviction: withdraw shard `shard`'s pending
  /// receives and unexpected messages from every registered communicator
  /// (wildcard receives withdraw globally — see ShardedEngine::drain_shard).
  void drain_lane_shard(unsigned shard,
                        std::vector<MatchEngine::DrainedReceive>& receives,
                        std::vector<UnexpectedDescriptor>& ums);

 private:
  void demote() noexcept {
    degraded_ = true;
    healthy_ticks_ = 0;
  }

  /// Stall detection: a handler whose modeled service time blows past the
  /// configured bound counts a stall event for the watchdog.
  void note_service_time(std::uint64_t cycles) noexcept {
    if (!cfg_.watchdog.enabled || cfg_.watchdog.stall_cycles == 0) return;
    if (cycles > cfg_.watchdog.stall_cycles) {
      stall_pending_ = true;
      ++stall_events_;
    }
  }

  struct CommEngine {
    explicit CommEngine(const MatchConfig& cfg, const CostTable* costs)
        : engine(cfg, costs) {}
    ShardedEngine engine;  ///< K == 1 delegates verbatim to one MatchEngine
  };

  static std::uint64_t comm_labels_allocated(const CommEngine& ce) noexcept {
    return ce.engine.labels_allocated();
  }

  static std::size_t footprint_of(const MatchConfig& cfg) noexcept {
    const auto f = MemoryFootprint::of(cfg.bins, cfg.max_receives);
    // Unexpected descriptors consume DPA memory too (same 64 B layout).
    // Sharding replicates the full structure set K times (docs/SHARDING.md:
    // the throughput is bought with memory).
    return (f.total() +
            cfg.max_unexpected * MemoryFootprint::kBytesPerDescriptor) *
           cfg.shards;
  }

  /// Process one maximal same-comm run of the arrival stream (single CQ:
  /// serial CQE dispatch + shared hart-slot pipeline).
  void deliver_run(ShardedEngine& engine, std::span<const IncomingMessage> msgs,
                   std::span<const std::uint64_t> arrivals,
                   std::vector<ArrivalOutcome>& out);
  /// Sharded variant: CQEs fan out to one queue per shard, each drained
  /// serially but independently, and each shard pipelines its own hart
  /// slots — the modeled win of docs/SHARDING.md.
  void deliver_run_sharded(ShardedEngine& engine,
                           std::span<const IncomingMessage> msgs,
                           std::span<const std::uint64_t> arrivals,
                           std::vector<ArrivalOutcome>& out);
  /// Multi-lane variant (lanes_ > 1): partition the run by ingress lane,
  /// form per-lane blocks with a batched per-lane CQE clock and per-lane
  /// hart slots, and scatter outcomes back to arrival order.
  void deliver_run_lanes(ShardedEngine& engine,
                         std::span<const IncomingMessage> msgs,
                         std::span<const std::uint64_t> arrivals,
                         std::vector<ArrivalOutcome>& out);

  /// Per-comm metric prefix and accelerator gauge refresh.
  void attach_engine_obs(CommId comm, ShardedEngine& eng);
  void publish_gauges() noexcept;

  DpaConfig cfg_;
  CostTable shared_costs_;  ///< cost table scaled for hart/core sharing
  std::map<CommId, std::unique_ptr<CommEngine>> engines_;
  LockstepExecutor executor_;  ///< deterministic; clocks model concurrency
  std::vector<std::uint64_t> slot_free_;  ///< per hart-slot pipeline time
  std::vector<std::uint64_t> starts_scratch_;  ///< per-block dispatch times
  std::size_t memory_used_ = 0;
  std::uint64_t cqe_ready_ = 0;  ///< next CQE delivery slot (serial NIC)
  /// Per-shard CQE clocks + hart-slot pipelines (sharded communicators).
  std::array<std::uint64_t, kMaxShards> cqe_shard_ready_{};
  std::array<std::array<std::uint64_t, kMaxBlockThreads>, kMaxShards>
      shard_slot_free_{};
  /// Multi-lane ingress: lane count, per-lane CQE clocks, per-lane hart
  /// pipelines, and per-lane partition scratch (reused across runs).
  unsigned lanes_ = 1;
  std::array<std::uint64_t, kMaxShards> lane_cqe_ready_{};
  std::array<std::array<std::uint64_t, kMaxBlockThreads>, kMaxShards>
      lane_slot_free_{};
  std::array<std::vector<std::size_t>, kMaxShards> lane_idx_scratch_;
  std::vector<IncomingMessage> lane_msgs_scratch_;
  std::uint64_t now_ = 0;
  std::uint64_t busy_cycles_ = 0;

  /// Watchdog state (single driver thread, like the clocks above).
  bool degraded_ = false;
  bool stall_pending_ = false;   ///< stall seen since the last tick
  bool memory_event_ = false;    ///< register_comm hit the memory budget
  std::uint32_t pressure_streak_ = 0;
  std::uint32_t stall_events_ = 0;   ///< since the last promotion
  std::uint32_t healthy_ticks_ = 0;  ///< consecutive clean ticks while demoted

  /// Per-lane watchdog state (multi-lane ingress).
  std::array<bool, kMaxShards> lane_degraded_{};
  std::array<std::uint32_t, kMaxShards> lane_pressure_streak_{};
  std::array<std::uint32_t, kMaxShards> lane_healthy_ticks_{};
  std::uint32_t lanes_degraded_ = 0;  ///< bitmask mirror of lane_degraded_

  obs::Observability* obs_ = nullptr;
  std::string obs_prefix_;
  obs::Gauge* g_memory_used_ = nullptr;
  obs::Gauge* g_busy_cycles_ = nullptr;
  obs::Gauge* g_now_ = nullptr;
  obs::Gauge* g_degraded_ = nullptr;
};

}  // namespace otm
