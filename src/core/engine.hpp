// MatchEngine: the complete offloaded matching flow of Fig. 1 built on the
// optimistic block matcher.
//
//   - post_receive(): check the unexpected-message store first (Fig. 1a);
//     otherwise index the receive into the posted-receive store.
//   - process(): consume a stream of incoming messages in blocks of N,
//     matching each block optimistically in parallel (Fig. 1b + Sec. III),
//     then insert the leftovers into the unexpected store in arrival order.
//
// Concurrency contract: post_receive() and process() must not overlap (the
// DPA dispatcher serializes command-QP posts against message blocks); the
// *inside* of process() is where the parallelism lives.
//
// One engine serves one communicator in the paper's architecture
// (Sec. IV-E); sharing one engine across communicators is functionally
// correct (the envelope carries the comm id) at the cost of extra collisions.
//
// Observability: attach_observability() wires the engine into a tracer /
// metrics registry / depth sampler (src/obs). With no observer attached
// every instrumentation site reduces to one null-pointer test.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/block_matcher.hpp"
#include "core/config.hpp"
#include "core/cost_model.hpp"
#include "core/receive_store.hpp"
#include "core/stats.hpp"
#include "core/types.hpp"
#include "core/unexpected_store.hpp"
#include "obs/observability.hpp"
#include "util/thread_annotations.hpp"

namespace otm {

/// Result of posting a receive.
struct PostOutcome {
  enum class Kind : std::uint8_t {
    kPending,            ///< indexed; waits for a matching message
    kMatchedUnexpected,  ///< immediately satisfied by a stored message
    kFallback,           ///< descriptor table full: use software matching
  };
  Kind kind = Kind::kPending;
  std::uint64_t cookie = 0;           ///< echo of the caller's request handle
  UnexpectedDescriptor message{};     ///< valid iff kMatchedUnexpected
  /// PRQ descriptor slot of the indexed receive, valid iff kPending. The
  /// sharded driver records it to link wildcard replicas to a claim record.
  std::uint32_t slot = kInvalidSlot;
};

/// MPI_Iprobe result. The leading fields mirror mpi::Status field-for-field
/// (source, tag, bytes — enforced by static_asserts at the mini-MPI layer)
/// so a probe translates into a status object by prefix copy instead of
/// per-field marshalling.
struct ProbeResult {
  Rank source = 0;
  Tag tag = 0;
  std::uint32_t bytes = 0;  ///< payload size of the stored message

  CommId comm = 0;
  Protocol protocol = Protocol::kEager;
  std::uint64_t wire_seq = 0;

  Envelope envelope() const noexcept { return {source, tag, comm}; }
};

/// How an arrival paired (or failed to pair) with a posted receive — the
/// matched-receive info consumed by the protocol-handling stage (Sec. IV-B).
struct MatchInfo {
  ResolutionPath path = ResolutionPath::kOptimistic;
  bool conflicted = false;
  std::uint64_t receive_cookie = 0;
  std::uint64_t buffer_addr = 0;
  std::uint32_t buffer_capacity = 0;
};

/// Message-side wire/protocol metadata, carried through matching untouched.
struct ProtocolInfo {
  std::uint64_t wire_seq = 0;
  Protocol protocol = Protocol::kEager;
  std::uint32_t payload_bytes = 0;
  std::uint32_t inline_bytes = 0;
  std::uint64_t bounce_handle = 0;
  std::uint64_t remote_key = 0;
  std::uint64_t remote_addr = 0;
  std::uint32_t payload_offset = 0;  ///< payload start inside the staged body

  static ProtocolInfo from(const IncomingMessage& m) noexcept {
    return {m.wire_seq, m.protocol,   m.payload_bytes, m.inline_bytes,
            m.bounce_handle, m.remote_key, m.remote_addr, m.payload_offset};
  }
};

/// Modeled-clock accounting (valid when cost accounting is enabled).
struct TimingInfo {
  std::uint64_t start_cycles = 0;   ///< modeled dispatch time of the message
  std::uint64_t finish_cycles = 0;  ///< modeled completion time
};

/// Result of processing one incoming message.
struct ArrivalOutcome {
  enum class Kind : std::uint8_t {
    kMatched,     ///< paired with a posted receive
    kUnexpected,  ///< stored in the unexpected-message store
    kDropped,     ///< unexpected store full: software-fallback signal
  };
  Kind kind = Kind::kUnexpected;
  Envelope env{};

  MatchInfo match{};     ///< valid iff kMatched (path/conflicted always valid)
  ProtocolInfo proto{};  ///< echo of the message's wire metadata
  TimingInfo timing{};   ///< modeled clocks (cost accounting on)
};

class MatchEngine {
 public:
  explicit MatchEngine(const MatchConfig& cfg, const CostTable* costs = nullptr);

  MatchEngine(const MatchEngine&) = delete;
  MatchEngine& operator=(const MatchEngine&) = delete;

  /// Wire this engine into an observability context. `prefix` namespaces
  /// the engine's metric/series names (e.g. "rank0.comm1"); counters become
  /// "<prefix>.<field>", histograms and depth series are shared across
  /// engines under "match.*" (they are observe-only, hence additive).
  /// Pass nullptr to detach.
  void attach_observability(obs::Observability* obs,
                            std::string_view prefix = "match");
  obs::Observability* observability() const noexcept { return obs_; }

  /// Fig. 1a: match against stored unexpected messages, else index.
  PostOutcome post_receive(const MatchSpec& spec, std::uint64_t buffer_addr = 0,
                           std::uint32_t buffer_capacity = 0,
                           std::uint64_t cookie = 0);

  /// MPI_Iprobe semantics over the arrived stream: non-destructively find
  /// the oldest stored unexpected message matching `spec`. The message
  /// stays queued; a subsequent matching post_receive() consumes it.
  std::optional<ProbeResult> probe(const MatchSpec& spec);

  /// MPI_Cancel semantics: withdraw a pending posted receive identified by
  /// its cookie. Returns the cancelled receive's buffer_addr, or nullopt
  /// when no pending receive carries the cookie (it already matched, or
  /// never existed) — in MPI terms the cancel did not succeed.
  /// Engine-serialized like post_receive().
  std::optional<std::uint64_t> cancel_receive(std::uint64_t cookie);

  /// One pending posted receive surfaced by collect_pending()/
  /// drain_pending() — the DPA watchdog's demotion path evicts NIC-resident
  /// matching state to the host software domain through these.
  struct DrainedReceive {
    MatchSpec spec{};
    std::uint64_t label = 0;  ///< global posting order (constraint C1)
    std::uint64_t cookie = 0;
    std::uint64_t buffer_addr = 0;
    std::uint32_t buffer_capacity = 0;
    std::uint32_t claim_idx = kInvalidSlot;
  };

  /// Append every pending posted receive to `out` in posting-label order
  /// (non-destructive; engine-serialized).
  void collect_pending(std::vector<DrainedReceive>& out) const;

  /// Withdraw every pending posted receive, appending them to `out` in
  /// posting-label order. Each withdrawal runs the cancel path, so the
  /// depth arithmetic and cookie bookkeeping stay exact. Returns the count.
  std::size_t drain_pending(std::vector<DrainedReceive>& out);

  /// Remove every stored unexpected message, appending the descriptors to
  /// `out` in arrival order (constraint C2). Returns the count.
  std::size_t drain_unexpected(std::vector<UnexpectedDescriptor>& out);

  /// Fig. 1b / Sec. III: process `msgs` in arrival order, in blocks of at
  /// most cfg.block_size. `arrival_cycles`, when non-empty, gives each
  /// message's modeled dispatch time (parallel to `msgs`).
  std::vector<ArrivalOutcome> process(std::span<const IncomingMessage> msgs,
                                      BlockExecutor& executor,
                                      std::span<const std::uint64_t> arrival_cycles = {});

  /// Single message convenience (block of one).
  ArrivalOutcome process_one(const IncomingMessage& msg, BlockExecutor& executor);

  // --- ShardedEngine integration (docs/SHARDING.md) -----------------------
  // The sharded driver splits process() into phases so K engines can run
  // their matching phases concurrently and cross-shard claims can be
  // arbitrated *before* any engine commits structural state:
  //
  //   arm_block() -> caller executes the matcher -> commit_block()
  //                                              or rollback_block()
  //
  // process() itself is implemented on top of these, so the single-engine
  // path and the per-shard path are the same code.

  /// Rearm the matcher for one block (engine-serialized). `msgs` must stay
  /// alive until commit_block()/rollback_block(); at most cfg.block_size
  /// messages.
  BlockMatcher& arm_block(std::span<const IncomingMessage> msgs,
                          std::span<const std::uint64_t> starts = {});

  /// Block epilogue (engine-serialized): merge stats, append one
  /// ArrivalOutcome per armed message to `out`, insert misses into the UMQ
  /// in thread-id order. `arrival_stamps`, when non-empty, is parallel to
  /// the armed block and overrides the UMQ arrival clock with
  /// externally-allocated (cross-shard) arrival positions — constraint C2
  /// across per-shard stores.
  void commit_block(std::vector<ArrivalOutcome>& out,
                    std::span<const std::uint64_t> arrival_stamps = {});

  /// Void the armed block instead of committing it: flip every tentative
  /// Posted->Consumed transition back (ShardedEngine repair of a contested
  /// cross-shard claim). No stats, no UMQ inserts; the burned generation
  /// makes the block's booking bits stale. Engine-serialized.
  void rollback_block();

  /// Non-destructive UMQ lookup for cross-shard post arbitration: slot and
  /// arrival stamp of the oldest stored message matching `spec`.
  struct UnexpectedPeek {
    std::uint32_t slot = kInvalidSlot;
    std::uint64_t arrival = 0;
  };
  std::optional<UnexpectedPeek> peek_unexpected(const MatchSpec& spec);

  /// Consume a previously peeked UMQ entry exactly as post_receive() would
  /// on a UMQ hit (the sharded driver already arbitrated which shard holds
  /// the oldest candidate).
  PostOutcome take_unexpected(std::uint32_t slot, std::uint64_t cookie);

  /// Index a receive with an externally-allocated posting label, skipping
  /// the UMQ check (the sharded driver performs it across all shards
  /// first). `claim_idx` links wildcard-source replicas to their shared
  /// claim word; kInvalidSlot for single-shard residents.
  PostOutcome post_pending(const MatchSpec& spec, std::uint64_t buffer_addr,
                           std::uint32_t buffer_capacity, std::uint64_t cookie,
                           std::uint64_t label, std::uint32_t claim_idx);

  /// Consume + (eager mode) unlink a wildcard replica whose claim a sibling
  /// shard won. The replica must still be Posted — the claim protocol
  /// guarantees at most one shard ever consumes a replicated receive. In
  /// lazy-removal mode the consumed entry is left for the amortized
  /// insert-time compaction, exactly like a locally-matched receive.
  void retire_replica(std::uint32_t slot);

  /// Borrow the live counters. Binding the reference is capability-free;
  /// the caller reads it between engine operations (same serialization
  /// phase that guards every other accessor here).
  const MatchStats& stats() const noexcept { return stats_; }
  /// Point-in-time copy of the counters (the registry-facing shim).
  MatchStats snapshot() const noexcept {
    SerialSection s(ingress_);
    return stats_;
  }
  const MatchConfig& config() const noexcept { return cfg_; }
  ReceiveStore& receives() noexcept { return prq_; }
  const ReceiveStore& receives() const noexcept { return prq_; }
  UnexpectedStore& unexpected() noexcept { return umq_; }
  const UnexpectedStore& unexpected() const noexcept { return umq_; }

  /// Modeled time of the latest completed message (cycles).
  std::uint64_t last_finish_cycles() const noexcept {
    SerialSection s(ingress_);
    return last_finish_cycles_;
  }

 private:
  /// Resolved metric handles (one registry lookup at attach time; hot paths
  /// go straight to the atomics).
  struct MetricHandles {
#define OTM_X(field) obs::Counter* field = nullptr;
    OTM_MATCH_COUNTER_FIELDS(OTM_X)
#undef OTM_X
    obs::Gauge* max_chain_scanned = nullptr;
    obs::Histogram* chain_depth = nullptr;       ///< per-message deepest scan
    obs::Histogram* block_occupancy = nullptr;   ///< messages per block
    obs::Histogram* conflict_latency = nullptr;  ///< modeled cycles lost to a conflict
  };

  /// Mirror stats_ into the registry counters (engine-serialized paths).
  void publish_metrics() noexcept OTM_REQUIRES(ingress_);
  /// Record PRQ/UMQ/descriptor-table depth series at modeled time `t`.
  void sample_depths(std::uint64_t t) OTM_REQUIRES(ingress_);
  /// Pending posted receives, O(1) from the counters. Replicas retired by a
  /// sibling shard's claim win left this engine without a local match.
  std::uint64_t posted_depth() const noexcept OTM_REQUIRES(ingress_) {
    return stats_.receives_posted - stats_.receives_matched_unexpected -
           stats_.messages_matched - stats_.cross_shard_retired -
           cancelled_receives_;
  }

  MatchConfig cfg_;
  const CostTable* costs_;
  ReceiveStore prq_;
  UnexpectedStore umq_;

  /// The engine-level serialization domain ("the DPA dispatcher serializes
  /// command-QP posts against message blocks"): every public entry point
  /// opens a SerialSection on it, and the fields below are written only
  /// inside one. Compile-time enforcement of the header's concurrency
  /// contract — zero runtime cost.
  SerialDomain ingress_;

  MatchStats stats_ OTM_GUARDED_BY(ingress_);
  std::uint32_t next_gen_ OTM_GUARDED_BY(ingress_) = 0;
  std::uint64_t last_finish_cycles_ OTM_GUARDED_BY(ingress_) = 0;
  std::uint64_t cancelled_receives_ OTM_GUARDED_BY(ingress_) = 0;
  /// Serialization point for ordered UMQ inserts.
  ThreadClock umq_clock_ OTM_GUARDED_BY(ingress_);
  BlockMatcher matcher_;  ///< reused across blocks (fixed scratch)
  /// Block epilogue reuse.
  std::vector<std::uint32_t> consumed_scratch_ OTM_GUARDED_BY(ingress_);
  /// Armed-block state between arm_block() and commit/rollback_block().
  std::span<const IncomingMessage> armed_msgs_ OTM_GUARDED_BY(ingress_);
  std::span<const std::uint64_t> armed_starts_ OTM_GUARDED_BY(ingress_);
  std::uint64_t armed_block_start_ OTM_GUARDED_BY(ingress_) = 0;
  bool armed_ OTM_GUARDED_BY(ingress_) = false;

  obs::Observability* obs_ = nullptr;
  MetricHandles mh_{};
  std::string obs_prefix_;
};

}  // namespace otm
